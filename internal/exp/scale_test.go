package exp

import (
	"strings"
	"testing"

	"edgefabric/internal/netsim"
	"edgefabric/internal/rib"
)

// TestE14SmallScale runs the scale experiment at a toy size: the
// mechanics (direct RIB load, delta cycles, stats plumbing) are
// identical to the million-prefix run, only the numbers differ.
func TestE14SmallScale(t *testing.T) {
	res, err := E14MillionPrefix(ScaleConfig{
		Prefixes:   3000,
		Cycles:     6,
		DirtyFrac:  0.02,
		RouteChurn: 32,
		HeavyK:     64,
		TailStride: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routes < res.Prefixes {
		t.Fatalf("loaded %d routes for %d prefixes; every prefix has at least a transit route", res.Routes, res.Prefixes)
	}
	if res.Cold <= 0 || res.DirtyP50 <= 0 || res.Sweep <= 0 {
		t.Fatalf("phases not measured: %+v", res)
	}
	if res.Last.Live != res.Prefixes {
		t.Fatalf("last cycle saw %d live prefixes, want %d", res.Last.Live, res.Prefixes)
	}
	if res.Last.Full {
		t.Fatalf("steady-state cycle fell back to a full rebuild: %q", res.Last.FullReason)
	}
	if res.Last.Recomputed == 0 {
		t.Fatal("route churn produced no recomputations")
	}
	s := res.String()
	for _, want := range []string{"E14", "cold full cycle", "dirty cycle p50", "warm full sweep"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

// TestLoadTableMatchesConvergedWire checks the direct loader against the
// topology's own expectations: one accepted route per announcement.
func TestLoadTableMatchesConvergedWire(t *testing.T) {
	sc, err := netsim.Synthesize(netsim.SynthConfig{Seed: 7, Prefixes: 400})
	if err != nil {
		t.Fatal(err)
	}
	tab := LoadTable(sc.Topo)
	want := 0
	for i := range sc.Topo.Peers {
		want += len(sc.Topo.Peers[i].Announces)
	}
	if got := tab.RouteCount(); got != want {
		t.Fatalf("loaded %d routes, topology announces %d", got, want)
	}
	// Spot-check class plumbing: transit routes must exist for every
	// prefix (transits announce the full table).
	missing := 0
	for _, pi := range sc.Prefixes {
		hasTransit := false
		for _, r := range tab.Routes(pi.Prefix) {
			if r.PeerClass == rib.ClassTransit {
				hasTransit = true
				break
			}
		}
		if !hasTransit {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d prefixes lack a transit route", missing)
	}
}
