package exp

import (
	"context"
	"fmt"
	"strings"
	"time"

	"edgefabric/internal/core"
	"edgefabric/internal/netsim"
)

// ---------------------------------------------------------------------
// E18: cross-PoP demand shifts
// ---------------------------------------------------------------------
//
// Edge Fabric is strictly per-PoP, but the demand it steers is not: when
// a region drops off one PoP (fiber cut, DNS steering away) or anycast
// re-homes a neighbor's users, load that vanished at one site reappears
// at others within a routing convergence. E18 reproduces that coupling
// with conserving demand-shift pairs — every byte drained from one PoP
// lands at the others — and validates two claims at fleet scale:
//
//  1. Hosting is behaviorally invisible under cross-PoP churn: a hosted
//     fleet member and its isolated twin, fed the same shift timeline,
//     make byte-identical steering decisions cycle for cycle.
//  2. Each receiving controller absorbs its share of the shifted demand
//     independently — demand measurably lands, the controller stays
//     healthy, and sustained drops do not appear while it has detour
//     room — with no cross-PoP coordination to lean on.
//
// Two episodes compose the timeline:
//
//	region-loss     PoP 1 (at its traffic peak) loses fraction f of its
//	                demand; every other PoP receives an equal share of
//	                the drained load (mult 1 + f·peak₁/Σ peakᵣ).
//	anycast-rehome  fraction g of PoP 2's users re-home onto PoP 3
//	                (from ×(1−g), to ×(1+g·peak₂/peak₃)); the rest of
//	                the fleet is untouched.

// FleetShiftConfig parameterizes an E18 run.
type FleetShiftConfig struct {
	// Base is the per-PoP harness config; ControllerEnabled is
	// required. Each member derives from Base exactly as in
	// FleetConfig (distinct seed, name, router block, staggered peak).
	Base HarnessConfig
	// PoPs is the fleet size. Default 4, minimum 3 (a loss PoP plus at
	// least two receivers; the re-homing pair needs a bystander to
	// prove non-receivers are untouched).
	PoPs int
	// LossFrac is the fraction of PoP 1's demand the region-loss
	// episode drains. Default 0.6.
	LossFrac float64
	// RehomeFrac is the fraction of PoP 2's demand the re-homing
	// episode lands on PoP 3. Default 0.5.
	RehomeFrac float64
	// Quiet is the event-free lead-in establishing each PoP's demand
	// baseline. Default 5m.
	Quiet time.Duration
	// EpisodeLen is each episode's duration. Default 20m.
	EpisodeLen time.Duration
	// Gap separates the two episodes. Default 5m.
	Gap time.Duration
	// Tail is the event-free run-out after the second episode.
	// Default 10m.
	Tail time.Duration
	// DropBound is the worst per-tick ground-truth drop fraction a
	// receiving PoP may show inside its shift window once the
	// absorption grace has passed. Default 0.02.
	DropBound float64
	// AbsorbGraceTicks is how many ticks after a shift lands the
	// receiver gets to react before drops count against DropBound —
	// the re-homed load arrives all at once, and the controller needs
	// sFlow windows plus a cycle or two of control lag to chase it.
	// Default 6.
	AbsorbGraceTicks int
}

func (c *FleetShiftConfig) setDefaults() {
	if c.PoPs == 0 {
		c.PoPs = 4
	}
	if c.LossFrac == 0 {
		c.LossFrac = 0.6
	}
	if c.RehomeFrac == 0 {
		c.RehomeFrac = 0.5
	}
	if c.Quiet == 0 {
		c.Quiet = 5 * time.Minute
	}
	if c.EpisodeLen == 0 {
		c.EpisodeLen = 20 * time.Minute
	}
	if c.Gap == 0 {
		c.Gap = 5 * time.Minute
	}
	if c.Tail == 0 {
		c.Tail = 10 * time.Minute
	}
	if c.DropBound == 0 {
		c.DropBound = 0.02
	}
	if c.AbsorbGraceTicks == 0 {
		c.AbsorbGraceTicks = 6
	}
}

// ShiftPoPRow is one PoP's outcome inside one episode window.
type ShiftPoPRow struct {
	PoP string
	// Mult is the scheduled demand multiplier (1 = bystander).
	Mult float64
	// DemandRatio is mean in-window demand over the PoP's baseline.
	DemandRatio float64
	// WorstDropFrac is the worst per-tick drop fraction anywhere in
	// the window, including the reaction-lag spike as the load lands.
	WorstDropFrac float64
	// SustainedDropFrac is the worst per-tick drop fraction after the
	// absorption grace — what the PoP kept dropping once the
	// controller had time to react. This is what Pass gates on.
	SustainedDropFrac float64
	// PeakDetourFrac is the highest per-cycle detoured share in the
	// window (how hard the controller worked to absorb).
	PeakDetourFrac float64
	// Healthy reports every in-window cycle stayed at HealthHealthy.
	Healthy bool
}

// ShiftEpisode is one episode's across-PoPs outcome.
type ShiftEpisode struct {
	Kind string
	Rows []ShiftPoPRow
}

// FleetShiftResult records one E18 run.
type FleetShiftResult struct {
	PoPs   int
	Cycles int
	// IdenticalCycles / ComparedCycles count hosted-vs-isolated
	// decision comparisons; equal means hosting is invisible under
	// cross-PoP churn.
	IdenticalCycles int
	ComparedCycles  int
	// OverridesSeen proves the equivalence was not vacuous.
	OverridesSeen int
	// FirstMismatch describes the first decision divergence.
	FirstMismatch string
	// Episodes are the two shift episodes' outcomes.
	Episodes  []ShiftEpisode
	dropBound float64
}

// shiftPlan is one scheduled episode in tick coordinates.
type shiftPlan struct {
	kind  string
	mults []float64     // per-PoP multiplier, 1 = untouched
	at    time.Duration // offset from run start
	from  int           // first tick inside the window
	to    int           // first tick past the window
}

// E18FleetShift builds the same fleet twice — hosted (one process, one
// sFlow demux, one supervisor) and isolated — attaches identical
// conserving demand-shift timelines to each twin pair, steps both in
// lockstep comparing steering decisions, and measures whether every
// receiving PoP absorbed its share.
func E18FleetShift(ctx context.Context, cfg FleetShiftConfig) (*FleetShiftResult, error) {
	cfg.setDefaults()
	if !cfg.Base.ControllerEnabled {
		return nil, fmt.Errorf("exp: E18 needs ControllerEnabled")
	}
	if cfg.PoPs < 3 {
		return nil, fmt.Errorf("exp: E18 needs at least 3 PoPs, got %d", cfg.PoPs)
	}
	fcfg := FleetConfig{Base: cfg.Base, PoPs: cfg.PoPs}
	host, err := NewFleetHost(ctx, fcfg)
	if err != nil {
		return nil, fmt.Errorf("exp: E18 host fleet: %w", err)
	}
	defer host.Close()
	iso, err := NewFleet(ctx, fcfg)
	if err != nil {
		return nil, fmt.Errorf("exp: E18 isolated fleet: %w", err)
	}
	defer iso.Close()

	tickLen := host.PoPs[0].Cfg.TickLen
	ticksOf := func(d time.Duration) int { return int(d / tickLen) }
	n := cfg.PoPs

	// Conserving multipliers. The members derive from one Base, so their
	// demand peaks are equal and the drained load splits evenly: a
	// region-loss of fraction f at PoP 1 sends f/(n-1) of a peak to each
	// receiver; a re-homing of fraction g from PoP 2 lands ×(1+g) on
	// PoP 3.
	lossMults := make([]float64, n)
	rehomeMults := make([]float64, n)
	for i := range lossMults {
		lossMults[i] = 1 + cfg.LossFrac/float64(n-1)
		rehomeMults[i] = 1
	}
	lossMults[0] = 1 - cfg.LossFrac
	rehomeMults[1] = 1 - cfg.RehomeFrac
	rehomeMults[2] = 1 + cfg.RehomeFrac

	lossAt := cfg.Quiet
	rehomeAt := cfg.Quiet + cfg.EpisodeLen + cfg.Gap
	total := rehomeAt + cfg.EpisodeLen + cfg.Tail
	plans := []shiftPlan{
		{kind: "region-loss", mults: lossMults, at: lossAt,
			from: ticksOf(lossAt), to: ticksOf(lossAt + cfg.EpisodeLen)},
		{kind: "anycast-rehome", mults: rehomeMults, at: rehomeAt,
			from: ticksOf(rehomeAt), to: ticksOf(rehomeAt + cfg.EpisodeLen)},
	}

	// Attach the identical per-PoP timeline to both twins.
	for i := 0; i < n; i++ {
		var events []netsim.Event
		for _, p := range plans {
			if p.mults[i] == 1 {
				continue
			}
			events = append(events, netsim.Event{
				Kind:      netsim.EventDemandShift,
				At:        p.at,
				Duration:  cfg.EpisodeLen,
				Magnitude: p.mults[i],
			})
		}
		if err := host.PoPs[i].AttachEvents(events); err != nil {
			return nil, err
		}
		if err := iso.PoPs[i].AttachEvents(events); err != nil {
			return nil, err
		}
	}

	res := &FleetShiftResult{PoPs: n, dropBound: cfg.DropBound}
	type popAcc struct {
		baseSum, baseTicks float64
		winSum, winTicks   []float64
		worstDrop          []float64
		sustainedDrop      []float64
		peakDetour         []float64
		unhealthy          []bool
	}
	accs := make([]popAcc, n)
	for i := range accs {
		accs[i] = popAcc{
			winSum: make([]float64, len(plans)), winTicks: make([]float64, len(plans)),
			worstDrop: make([]float64, len(plans)), sustainedDrop: make([]float64, len(plans)),
			peakDetour: make([]float64, len(plans)), unhealthy: make([]bool, len(plans)),
		}
	}
	inWindow := func(t int) int {
		for pi, p := range plans {
			if t >= p.from && t < p.to {
				return pi
			}
		}
		return -1
	}

	ticks := ticksOf(total)
	res.Cycles = ticks
	for t := 0; t < ticks; t++ {
		w := inWindow(t)
		for i := 0; i < n; i++ {
			hs, hr := host.PoPs[i].Step()
			_, ir := iso.PoPs[i].Step()
			if hr != nil && ir != nil {
				res.ComparedCycles++
				res.OverridesSeen += len(hr.Overrides)
				hk, ik := decisionKey(hr.Overrides), decisionKey(ir.Overrides)
				if hk == ik {
					res.IdenticalCycles++
				} else if res.FirstMismatch == "" {
					res.FirstMismatch = fmt.Sprintf("%s tick %d: hosted {%s} vs isolated {%s}",
						host.PoPs[i].Scenario.Topo.Name, t, hk, ik)
				}
			}
			acc := &accs[i]
			demand := hs.TotalDemandBps()
			if w < 0 {
				acc.baseSum += demand
				acc.baseTicks++
				continue
			}
			acc.winSum[w] += demand
			acc.winTicks[w]++
			if demand > 0 {
				frac := hs.TotalDropsBps() / demand
				if frac > acc.worstDrop[w] {
					acc.worstDrop[w] = frac
				}
				if t-plans[w].from >= cfg.AbsorbGraceTicks && frac > acc.sustainedDrop[w] {
					acc.sustainedDrop[w] = frac
				}
			}
			if hr != nil {
				if hr.Health != core.HealthHealthy {
					acc.unhealthy[w] = true
				}
				if hr.DemandBps > 0 {
					if frac := hr.DetouredBps / hr.DemandBps; frac > acc.peakDetour[w] {
						acc.peakDetour[w] = frac
					}
				}
			}
		}
	}

	for pi, p := range plans {
		ep := ShiftEpisode{Kind: p.kind}
		for i := 0; i < n; i++ {
			acc := &accs[i]
			row := ShiftPoPRow{
				PoP:               host.PoPs[i].Scenario.Topo.Name,
				Mult:              p.mults[i],
				WorstDropFrac:     acc.worstDrop[pi],
				SustainedDropFrac: acc.sustainedDrop[pi],
				PeakDetourFrac:    acc.peakDetour[pi],
				Healthy:           !acc.unhealthy[pi],
			}
			if acc.baseTicks > 0 && acc.winTicks[pi] > 0 {
				base := acc.baseSum / acc.baseTicks
				if base > 0 {
					row.DemandRatio = (acc.winSum[pi] / acc.winTicks[pi]) / base
				}
			}
			ep.Rows = append(ep.Rows, row)
		}
		res.Episodes = append(res.Episodes, ep)
	}
	return res, nil
}

// Pass reports whether the run upholds E18's claims: every compared
// cycle byte-identical between the twins, every shifted PoP's demand
// actually moved (at least half the scheduled shift, leaving room for
// diurnal drift under the staggered peaks), every receiver absorbed its
// share without sustained drops, and every controller stayed healthy
// throughout its windows.
func (r *FleetShiftResult) Pass() bool {
	if r.ComparedCycles == 0 || r.IdenticalCycles != r.ComparedCycles {
		return false
	}
	for _, ep := range r.Episodes {
		for _, row := range ep.Rows {
			if !row.Healthy {
				return false
			}
			switch {
			case row.Mult > 1:
				if row.DemandRatio < 1+0.5*(row.Mult-1) {
					return false
				}
				if row.SustainedDropFrac > r.dropBound {
					return false
				}
			case row.Mult < 1:
				if row.DemandRatio > 1-0.5*(1-row.Mult) {
					return false
				}
			}
		}
	}
	return true
}

// String renders the E18 outcome.
func (r *FleetShiftResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E18: %d-PoP cross-PoP shifts over %d ticks: %d/%d cycles identical (%d override decisions)\n",
		r.PoPs, r.Cycles, r.IdenticalCycles, r.ComparedCycles, r.OverridesSeen)
	if r.FirstMismatch != "" {
		fmt.Fprintf(&b, "  first mismatch: %s\n", r.FirstMismatch)
	}
	for _, ep := range r.Episodes {
		fmt.Fprintf(&b, "  %s:\n", ep.Kind)
		fmt.Fprintf(&b, "    %-10s %6s %8s %10s %10s %8s %8s\n",
			"pop", "mult", "demand", "worst drop", "sustained", "detour", "healthy")
		for _, row := range ep.Rows {
			fmt.Fprintf(&b, "    %-10s %5.2fx %7.2fx %9.3f%% %9.3f%% %7.1f%% %8v\n",
				row.PoP, row.Mult, row.DemandRatio, 100*row.WorstDropFrac,
				100*row.SustainedDropFrac, 100*row.PeakDetourFrac, row.Healthy)
		}
	}
	if r.Pass() {
		fmt.Fprintf(&b, "  PASS: shifts absorbed independently, hosting invisible\n")
	} else {
		fmt.Fprintf(&b, "  FAIL\n")
	}
	return b.String()
}
