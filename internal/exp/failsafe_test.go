package exp

import (
	"testing"
	"time"

	"edgefabric/internal/rib"
)

// TestControllerDeathFailsSafe verifies the paper's central safety
// property: the controller holds no durable state in the routers beyond
// its BGP sessions, so killing it withdraws every override and the PoP
// reverts to plain BGP policy.
func TestControllerDeathFailsSafe(t *testing.T) {
	h := newTestHarness(t, testConfig(true))

	// Reach a state with live overrides.
	h.Run(6*30*time.Second, nil)
	if len(h.Controller.Installed()) == 0 {
		t.Fatal("no overrides installed before the kill")
	}
	countInjected := func() int {
		n := 0
		for _, p := range h.PoP.Table.Prefixes() {
			if best := h.PoP.Table.Best(p); best != nil && best.PeerClass == rib.ClassController {
				n++
			}
		}
		return n
	}
	if countInjected() == 0 {
		t.Fatal("no controller routes in the PoP table before the kill")
	}

	// Kill the controller: its iBGP sessions drop, the PRs withdraw
	// everything learned from it.
	h.Controller.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && countInjected() > 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if n := countInjected(); n != 0 {
		t.Fatalf("%d controller routes survive controller death", n)
	}

	// The dataplane still routes everything — on BGP's own choices.
	stats := h.PoP.Plane.Tick(h.Clock.Now(), 30*time.Second)
	if stats.UnroutedBps != 0 {
		t.Errorf("unrouted demand after fail-back: %g", stats.UnroutedBps)
	}
	for _, pt := range stats.Prefix {
		if pt.Injected {
			t.Fatal("tick still reports injected traffic after controller death")
		}
	}
	h.Controller = nil // prevent double-close in cleanup
}
