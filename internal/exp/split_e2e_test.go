package exp

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"edgefabric/internal/core"
	"edgefabric/internal/rib"
)

// TestSplitOverrideEndToEnd drives a split override through the real
// stack: the injector announces a more-specific half over iBGP, the
// peering routers install it, and the dataplane steers half the
// aggregate's demand onto the detour interface.
func TestSplitOverrideEndToEnd(t *testing.T) {
	h := newTestHarness(t, testConfig(false)) // no controller: we inject by hand

	// Pick a private-preferred prefix with a transit alternate.
	var prefix netip.Prefix
	var alt *rib.Route
	for _, pi := range h.Scenario.Prefixes {
		if !pi.Prefix.Addr().Is4() {
			continue
		}
		routes := h.PoP.Table.Routes(pi.Prefix)
		if len(routes) < 2 || routes[0].PeerClass != rib.ClassPrivate {
			continue
		}
		for _, r := range routes[1:] {
			if r.PeerClass == rib.ClassTransit {
				prefix, alt = pi.Prefix, r
				break
			}
		}
		if alt != nil {
			break
		}
	}
	if alt == nil {
		t.Fatal("no suitable prefix")
	}
	organicIF := h.PoP.Table.Best(prefix).EgressIF

	inj, err := core.NewInjector(core.InjectorConfig{
		LocalAS:  h.Scenario.Topo.LocalAS,
		RouterID: netip.MustParseAddr("10.255.0.100"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inj.Close()
	for _, router := range h.PoP.Routers() {
		conn, err := h.PoP.ConnectController(router)
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.AddRouter(h.PoP.RouterIP(router), conn); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := inj.WaitEstablished(ctx); err != nil {
		t.Fatal(err)
	}

	lo, _, ok := rib.Split(prefix)
	if !ok {
		t.Fatal("prefix not splittable")
	}
	if _, err := inj.Sync([]core.Override{{
		Prefix:  lo,
		SplitOf: prefix,
		Via:     alt,
		FromIF:  organicIF,
		ToIF:    alt.EgressIF,
	}}); err != nil {
		t.Fatal(err)
	}
	// Wait for the half to land in the PoP table via the iBGP sessions.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if best := h.PoP.Table.Best(lo); best != nil && best.PeerClass == rib.ClassController {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	best := h.PoP.Table.Best(lo)
	if best == nil || best.PeerClass != rib.ClassController {
		t.Fatal("split half never installed")
	}

	stats, _ := h.Step()
	pt := stats.Prefix[prefix]
	if pt == nil {
		t.Fatal("no tick stats for the aggregate")
	}
	if !pt.HasSplit || !pt.Injected {
		t.Fatalf("tick did not split: %+v", pt)
	}
	if pt.SplitIF != alt.EgressIF {
		t.Errorf("split egress = if %d, want %d", pt.SplitIF, alt.EgressIF)
	}
	if pt.EgressIF != organicIF {
		t.Errorf("primary egress = if %d, want organic %d", pt.EgressIF, organicIF)
	}
	if pt.SplitBps <= 0 || pt.SplitBps > pt.DemandBps {
		t.Errorf("split share = %g of %g", pt.SplitBps, pt.DemandBps)
	}
	// The halves sum: interface loads include both contributions.
	if stats.IfLoadBps[alt.EgressIF] < pt.SplitBps {
		t.Errorf("detour interface load %g < split share %g",
			stats.IfLoadBps[alt.EgressIF], pt.SplitBps)
	}

	// Withdraw: the aggregate reverts to whole-prefix organic routing.
	if _, err := inj.Sync(nil); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && h.PoP.Table.Best(lo) != nil {
		time.Sleep(2 * time.Millisecond)
	}
	if h.PoP.Table.Best(lo) != nil {
		t.Fatal("split half not withdrawn")
	}
	stats, _ = h.Step()
	if stats.Prefix[prefix].HasSplit {
		t.Error("still splitting after withdraw")
	}
}
