// Package exp assembles the full Edge Fabric reproduction into runnable
// experiments: it wires a live emulated PoP (internal/netsim) to the
// controller (internal/core) over real BGP, BMP, and sFlow transports,
// steps virtual time, and implements every experiment indexed in
// DESIGN.md / EXPERIMENTS.md (E1–E10 plus the across-PoPs FLEET view).
package exp

import (
	"context"
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"edgefabric/internal/altpath"
	"edgefabric/internal/core"
	"edgefabric/internal/netsim"
	"edgefabric/internal/rib"
	"edgefabric/internal/sflow"
)

// HarnessConfig parameterizes a full closed-loop simulation.
type HarnessConfig struct {
	// Synth configures the synthetic PoP scenario.
	Synth netsim.SynthConfig
	// Demand configures the traffic model (PeakBps defaults to the
	// synth peak).
	Demand netsim.DemandConfig
	// Perf configures the path performance model.
	Perf netsim.PathPerfConfig
	// Allocator configures the controller's overload algorithm.
	Allocator core.AllocatorConfig
	// ControllerEnabled wires and runs the controller; when false the
	// PoP runs on plain BGP (the paper's "without Edge Fabric"
	// baseline).
	ControllerEnabled bool
	// PerfAware additionally enables §6 performance-aware overrides.
	PerfAware bool
	// PerfCfg parameterizes performance-aware moves.
	PerfCfg core.PerfConfig
	// Multipath upgrades the perf pass (PerfAware must be set) to the
	// weighted multipath optimizer: demand split across up to k egresses
	// by headroom and measured RTT/retransmit stats.
	Multipath bool
	// MultipathCfg parameterizes the multipath optimizer.
	MultipathCfg core.MultipathConfig
	// Start is the virtual start time. Default 2017-03-01 00:00 UTC.
	Start time.Time
	// TickLen is the dataplane step. Default 30 s.
	TickLen time.Duration
	// CycleEveryTicks runs a controller cycle every N ticks. Default 1
	// (a cycle per 30 s tick, the paper's cadence).
	CycleEveryTicks int
	// Health parameterizes the controller's input-health thresholds;
	// zero fields default from the cycle interval.
	Health core.HealthConfig
	// SamplingRate is the sFlow 1-in-N rate. Default 8192.
	SamplingRate uint32
	// SFlowDemux, when set, is a shared fleet-host ingest point: the
	// PoP's routers register their agent addresses against this
	// harness's own collector and export through the demux instead of
	// straight into the collector. Requires router IDs disjoint from
	// every other PoP on the same demux (see netsim.SynthConfig.PoPIndex).
	SFlowDemux *sflow.Demux
	// Audit, when set, receives one JSON line per controller cycle.
	Audit *core.AuditLogger
	// Logf, when set, receives one-line log events.
	Logf func(format string, args ...any)
}

func (c *HarnessConfig) setDefaults() {
	if c.Start.IsZero() {
		c.Start = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.TickLen == 0 {
		c.TickLen = 30 * time.Second
	}
	if c.CycleEveryTicks == 0 {
		c.CycleEveryTicks = 1
	}
	if c.SamplingRate == 0 {
		c.SamplingRate = 8192
	}
}

// Harness is a running closed-loop simulation.
type Harness struct {
	Cfg        HarnessConfig
	Scenario   *netsim.Scenario
	Demand     *netsim.DemandModel
	Clock      *netsim.Clock
	PoP        *netsim.PoP
	Controller *core.Controller // nil when disabled
	Traffic    *sflow.Collector
	// Loss sits between the routers' sFlow agents and the collector;
	// fault experiments script datagram loss or total feed death on it.
	Loss      *netsim.LossySink
	Measurer  *altpath.Measurer // nil unless PerfAware or built by an experiment
	Inventory *core.Inventory
	// Events, when attached, is advanced by Step before every tick; see
	// AttachEvents.
	Events *netsim.EventEngine

	cancel          context.CancelFunc
	ticks           int
	eventBoundaries int
	cyclesPaused    atomic.Bool
}

// SetCyclesPaused gates the controller leg of Step: while paused, ticks
// still move the dataplane and virtual clock but no cycles run. The
// fleet supervisor uses this as a member's Pause hook so a draining
// PoP's controller stops writing overrides while its PoP keeps serving.
func (h *Harness) SetCyclesPaused(paused bool) { h.cyclesPaused.Store(paused) }

// lateMapper lets the sFlow collector be constructed before the route
// store that backs its prefix mapping exists.
type lateMapper struct {
	fn atomic.Pointer[sflow.PrefixMapper]
}

// MapPrefix implements sflow.PrefixMapper.
func (l *lateMapper) MapPrefix(a netip.Addr) netip.Prefix {
	if m := l.fn.Load(); m != nil {
		return (*m).MapPrefix(a)
	}
	return netip.Prefix{}
}

// InventoryFromTopology converts a netsim topology into the controller's
// inventory, registering the IPv6 next-hop aliases the simulator derives
// for v4-addressed sessions.
func InventoryFromTopology(topo *netsim.Topology) (*core.Inventory, error) {
	var peers []core.PeerInfo
	for i := range topo.Peers {
		p := &topo.Peers[i]
		peers = append(peers, core.PeerInfo{
			Name:        p.Name,
			Addr:        p.Addr,
			AS:          p.AS,
			Class:       p.Class,
			InterfaceID: p.InterfaceID,
			Router:      p.Router,
		})
	}
	var ifs []core.InterfaceInfo
	for i := range topo.Interfaces {
		ifc := &topo.Interfaces[i]
		ifs = append(ifs, core.InterfaceInfo{
			ID:          ifc.ID,
			Name:        ifc.Name,
			CapacityBps: ifc.CapacityBps,
			Router:      ifc.Router,
		})
	}
	inv, err := core.NewInventory(peers, ifs)
	if err != nil {
		return nil, err
	}
	for i := range topo.Peers {
		p := &topo.Peers[i]
		// Register the derived IPv6 next-hop identity the simulator
		// uses for v4-addressed sessions, so v6 routes resolve.
		if v6 := netsim.V6AliasFor(p.Addr); v6 != p.Addr {
			_ = inv.RegisterPeerAlias(v6, p.Addr) // best effort; aliases may collide
		}
	}
	return inv, nil
}

// NewHarness synthesizes a scenario, starts the PoP, wires the
// controller (if enabled), and blocks until BGP has converged and the
// controller is ready.
func NewHarness(ctx context.Context, cfg HarnessConfig) (*Harness, error) {
	cfg.setDefaults()
	sc, err := netsim.Synthesize(cfg.Synth)
	if err != nil {
		return nil, err
	}
	demand, err := sc.NewDemand(cfg.Demand)
	if err != nil {
		return nil, err
	}
	clock := netsim.NewClock(cfg.Start)

	mapper := &lateMapper{}
	traffic := sflow.NewCollector(sflow.CollectorConfig{
		Mapper:  mapper,
		Window:  time.Minute,
		Buckets: 2,
		Now:     clock.Now,
	})

	// In fleet-host mode the PoP's agents export into the shared demux,
	// which routes each datagram back to this PoP's collector by agent
	// address — exactly the path a shared UDP listener takes.
	var sink sflow.Sink = traffic
	if cfg.SFlowDemux != nil {
		bindings := make(map[netip.Addr]*sflow.Collector, len(sc.Topo.Routers))
		for _, r := range sc.Topo.Routers {
			bindings[r.RouterID] = traffic
		}
		cfg.SFlowDemux.RegisterBatch(bindings)
		sink = cfg.SFlowDemux
	}
	// The lossy wrapper is transparent until a fault experiment scripts
	// loss on it.
	loss := netsim.NewLossySink(sink, cfg.Synth.Seed)
	pop, err := netsim.NewPoP(netsim.PoPConfig{
		Scenario:     sc,
		Demand:       demand,
		Clock:        clock,
		Perf:         cfg.Perf,
		SFlowSink:    loss,
		SamplingRate: cfg.SamplingRate,
		Logf:         cfg.Logf,
	})
	if err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(context.Background())
	h := &Harness{
		Cfg:      cfg,
		Scenario: sc,
		Demand:   demand,
		Clock:    clock,
		PoP:      pop,
		Traffic:  traffic,
		Loss:     loss,
		cancel:   cancel,
	}
	if err := pop.Start(runCtx); err != nil {
		cancel()
		return nil, err
	}
	convergeCtx, ccancel := context.WithTimeout(ctx, 60*time.Second)
	defer ccancel()
	if err := pop.WaitConverged(convergeCtx); err != nil {
		h.Close()
		return nil, err
	}

	inv, err := InventoryFromTopology(sc.Topo)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Inventory = inv

	if !cfg.ControllerEnabled {
		// Demand mapping still needs LPM over known prefixes: use the
		// PoP table directly.
		var m sflow.PrefixMapper = sflow.PrefixMapperFunc(pop.Table.LookupPrefix)
		mapper.fn.Store(&m)
		return h, nil
	}

	// The perf-aware hook needs the controller's route store, which only
	// exists after core.New; bind it through a late-set closure.
	var extra func(*core.Projection, *core.AllocResult, *core.CycleTrace) []core.Override
	ctrl, err := core.New(core.Config{
		Inventory:     inv,
		Traffic:       traffic,
		Allocator:     cfg.Allocator,
		CycleInterval: cfg.TickLen * time.Duration(cfg.CycleEveryTicks),
		Health:        cfg.Health,
		LocalAS:       sc.Topo.LocalAS,
		Now:           clock.Now,
		Audit:         cfg.Audit,
		Logf:          cfg.Logf,
		ExtraOverrides: func(proj *core.Projection, alloc *core.AllocResult, tr *core.CycleTrace) []core.Override {
			if extra == nil {
				return nil
			}
			return extra(proj, alloc, tr)
		},
	})
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Controller = ctrl

	if cfg.PerfAware {
		meas, err := altpath.NewMeasurer(altpath.Config{
			Routes: ctrl.Store().Table(),
			Source: pop.Plane,
			Seed:   cfg.Synth.Seed,
		})
		if err != nil {
			h.Close()
			return nil, err
		}
		h.Measurer = meas
		if cfg.Multipath {
			mcfg := cfg.MultipathCfg
			// prev carries the installed multipath sets across cycles so
			// hysteresis can re-affirm unchanged sets without churn.
			prev := make(map[netip.Prefix]core.Override)
			extra = func(proj *core.Projection, alloc *core.AllocResult, tr *core.CycleTrace) []core.Override {
				var prefixes []netip.Prefix
				for p := range proj.Plans {
					prefixes = append(prefixes, p)
				}
				meas.MeasureRound(prefixes)
				out := core.MultipathAllocateTraced(proj, inv, meas.Reports(), alloc, prev, cfg.Allocator, mcfg, tr)
				prev = core.MultipathPrior(out)
				return out
			}
		} else {
			pcfg := cfg.PerfCfg
			extra = func(proj *core.Projection, alloc *core.AllocResult, tr *core.CycleTrace) []core.Override {
				// Measure the prefixes that currently have demand, then
				// fold qualifying gains into this cycle's override set.
				var prefixes []netip.Prefix
				for p := range proj.Plans {
					prefixes = append(prefixes, p)
				}
				meas.MeasureRound(prefixes)
				return core.PerfAllocateTraced(proj, inv, meas.Reports(), alloc, cfg.Allocator, pcfg, tr)
			}
		}
	}

	// Route mapping for sFlow now comes from the controller's store.
	var m sflow.PrefixMapper = h.Controller.Store()
	mapper.fn.Store(&m)

	// Wire BMP feeds and injection sessions through the PoP's dialers so
	// both self-heal (and so fault experiments can kill and restore
	// them). The first BMP dial consumes the stream created at Start,
	// which carries the initial convergence backlog.
	for _, router := range pop.Routers() {
		h.Controller.AddBMPFeedDialer(router, pop.BMPDialer(router))
		if err := h.Controller.AddInjectionSessionDialer(pop.RouterIP(router), pop.ControllerDialer(router)); err != nil {
			h.Close()
			return nil, err
		}
	}
	readyCtx, rcancel := context.WithTimeout(ctx, 60*time.Second)
	defer rcancel()
	if err := h.Controller.WaitReady(readyCtx, pop.ExpectedRoutes()); err != nil {
		h.Close()
		return nil, err
	}
	return h, nil
}

// AttachEvents builds an EventEngine over the harness's PoP for the
// given timeline and has Step drive it: events start applying at the
// current virtual time. Capacity events are mirrored into the
// controller's inventory (the SNMP view) in addition to the dataplane.
func (h *Harness) AttachEvents(events []netsim.Event) error {
	eng, err := netsim.NewEventEngine(netsim.EventEngineConfig{
		Start:  h.Clock.Now(),
		Events: events,
		PoP:    h.PoP,
		Demand: h.Demand,
		Loss:   h.Loss,
		OnCapacity: func(ifID int, bps float64) {
			_ = h.Inventory.SetInterfaceCapacity(ifID, bps)
		},
		Logf: h.Cfg.Logf,
	})
	if err != nil {
		return err
	}
	h.Events = eng
	return nil
}

// EventBoundaries reports how many event transitions (applies plus
// reverts) have fired during Steps so far.
func (h *Harness) EventBoundaries() int { return h.eventBoundaries }

// Step advances the simulation by one tick: scheduled events fire, the
// dataplane moves demand (feeding sFlow), virtual time advances, and —
// on cycle boundaries — the controller runs. It returns the tick's
// dataplane stats and the cycle report if a cycle ran (nil otherwise).
func (h *Harness) Step() (*netsim.TickStats, *core.CycleReport) {
	if h.Events != nil {
		h.eventBoundaries += h.Events.Advance(h.Clock.Now())
	}
	stats := h.PoP.Plane.Tick(h.Clock.Now(), h.Cfg.TickLen)
	h.Clock.Advance(h.Cfg.TickLen)
	h.ticks++
	var report *core.CycleReport
	if h.Controller != nil && h.ticks%h.Cfg.CycleEveryTicks == 0 && !h.cyclesPaused.Load() {
		report, _ = h.Controller.RunCycle()
		h.waitOverridesApplied(report)
	}
	return stats, report
}

// waitOverridesApplied blocks briefly until the PoP table reflects the
// injector's current override set: injection rides asynchronous BGP
// sessions, and the simulation's virtual time shouldn't race wall-clock
// message delivery. The wait is event-driven: each retry blocks on the
// next PoP-table mutation instead of sleeping.
func (h *Harness) waitOverridesApplied(report *core.CycleReport) {
	if report == nil {
		return
	}
	// A frozen or failed-back cycle may be mid-fault (killed sessions,
	// dead feeds): the table legitimately cannot converge to the report,
	// and blocking here would stall virtual time on a wall-clock timeout.
	if report.Health == core.HealthFailStatic || report.Health == core.HealthFailBack {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for {
		ver := h.PoP.Table.Version()
		if h.overridesApplied(report) {
			return
		}
		if err := h.PoP.Table.WaitChange(ctx, ver); err != nil {
			return
		}
	}
}

func (h *Harness) overridesApplied(report *core.CycleReport) bool {
	want := make(map[netip.Prefix]bool, len(report.Overrides))
	for _, o := range report.Overrides {
		want[o.Prefix] = true
	}
	n := 0
	h.PoP.Table.EachBest(func(p netip.Prefix, r *rib.Route) {
		if r.PeerClass == rib.ClassController {
			if !want[p] {
				n = -1 << 30 // stale override still installed
			}
			n++
		}
	})
	return n == len(want)
}

// Run steps the simulation for the given virtual duration, invoking
// observe (if non-nil) after every tick.
func (h *Harness) Run(d time.Duration, observe func(*netsim.TickStats, *core.CycleReport)) {
	n := int(d / h.Cfg.TickLen)
	for i := 0; i < n; i++ {
		stats, report := h.Step()
		if observe != nil {
			observe(stats, report)
		}
	}
}

// Explain renders the controller's decision trace for a prefix (see
// core.Controller.Explain). Empty when the harness runs without a
// controller.
func (h *Harness) Explain(p netip.Prefix) string {
	if h.Controller == nil {
		return ""
	}
	return h.Controller.Explain(p)
}

// Close tears the whole harness down.
func (h *Harness) Close() {
	if h.Controller != nil {
		h.Controller.Close()
	}
	if h.Cfg.SFlowDemux != nil {
		agents := make([]netip.Addr, 0, len(h.Scenario.Topo.Routers))
		for _, r := range h.Scenario.Topo.Routers {
			agents = append(agents, r.RouterID)
		}
		h.Cfg.SFlowDemux.UnregisterBatch(agents)
	}
	h.cancel()
	h.PoP.Close()
}

// String identifies the harness configuration compactly.
func (h *Harness) String() string {
	mode := "bgp-only"
	if h.Controller != nil {
		mode = "edge-fabric"
		if h.Cfg.PerfAware {
			mode = "edge-fabric+perf"
		}
	}
	return fmt.Sprintf("%s[%s, %d prefixes, %d peers]",
		h.Scenario.Topo.Name, mode, len(h.Scenario.Prefixes), len(h.Scenario.Topo.Peers))
}
