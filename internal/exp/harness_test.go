package exp

import (
	"context"
	"testing"
	"time"

	"edgefabric/internal/core"
	"edgefabric/internal/netsim"
)

// testConfig builds a small scenario whose PNIs are deliberately
// underprovisioned so that peak demand overloads them.
func testConfig(controller bool) HarnessConfig {
	return HarnessConfig{
		Synth: netsim.SynthConfig{
			Seed:               21,
			Prefixes:           250,
			EdgeASes:           40,
			PrivatePeers:       4,
			PublicPeers:        8,
			RouteServerMembers: 10,
			Transits:           2,
			Routers:            2,
			PeakBps:            100e9,
			PNIHeadroomMin:     0.6,
			PNIHeadroomMax:     0.9, // every PNI under peak demand
		},
		Demand:            netsim.DemandConfig{PeakBps: 100e9, NoiseSigma: 0.05},
		ControllerEnabled: controller,
		Start:             time.Date(2017, 3, 1, 20, 0, 0, 0, time.UTC), // peak hour
	}
}

func TestHarnessClosedLoop(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	h, err := NewHarness(ctx, testConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var lastStats *netsim.TickStats
	var lastReport *core.CycleReport
	overridesSeen := false
	// A few warmup ticks let sFlow rates accumulate before judging.
	h.Run(10*30*time.Second, func(s *netsim.TickStats, r *core.CycleReport) {
		lastStats = s
		if r != nil {
			lastReport = r
			if len(r.Overrides) > 0 {
				overridesSeen = true
			}
		}
	})
	if lastReport == nil {
		t.Fatal("controller never cycled")
	}
	if !overridesSeen {
		t.Fatal("underprovisioned PNIs at peak produced no overrides")
	}
	// After convergence, drops should be (near) zero: Edge Fabric keeps
	// interfaces below capacity.
	if lastStats.TotalDropsBps() > 0.01*lastStats.TotalDemandBps() {
		t.Errorf("drops %.3g vs demand %.3g with controller active",
			lastStats.TotalDropsBps(), lastStats.TotalDemandBps())
	}
	// Overrides are live in the PoP table (injected over real BGP).
	if !overridesInTable(h) {
		t.Error("no controller routes present in the PoP table")
	}
}

func overridesInTable(h *Harness) bool {
	found := false
	for p := range h.Controller.Installed() {
		if best := h.PoP.Table.Best(p); best != nil && best.FromIBGP {
			found = true
		}
	}
	return found
}

func TestHarnessBaselineDropsWithoutController(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	h, err := NewHarness(ctx, testConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Controller != nil {
		t.Fatal("controller should be nil")
	}
	var worstDrops float64
	h.Run(5*30*time.Second, func(s *netsim.TickStats, _ *core.CycleReport) {
		if d := s.TotalDropsBps(); d > worstDrops {
			worstDrops = d
		}
	})
	if worstDrops == 0 {
		t.Error("underprovisioned PNIs at peak should drop without Edge Fabric")
	}
}

func TestInventoryFromTopology(t *testing.T) {
	sc, err := netsim.Synthesize(testConfig(false).Synth)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := InventoryFromTopology(sc.Topo)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(inv.Interfaces()), len(sc.Topo.Interfaces); got != want {
		t.Errorf("interfaces = %d, want %d", got, want)
	}
	for i := range sc.Topo.Peers {
		p := &sc.Topo.Peers[i]
		info, ok := inv.PeerByAddr(p.Addr)
		if !ok || info.InterfaceID != p.InterfaceID {
			t.Errorf("peer %s missing or wrong: %+v", p.Name, info)
		}
		if alias := netsim.V6AliasFor(p.Addr); alias != p.Addr {
			if _, ok := inv.PeerByAddr(alias); !ok {
				t.Errorf("v6 alias for %s not registered", p.Name)
			}
		}
	}
}
