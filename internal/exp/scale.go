package exp

import (
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"strings"
	"time"

	"edgefabric/internal/core"
	"edgefabric/internal/netsim"
	"edgefabric/internal/rib"
)

// E14: million-prefix scale. The wire-level harness tops out far below
// a full Internet table — BGP convergence over emulated sessions is the
// bottleneck, not the controller — so this experiment loads the RIB
// directly from the synthesized announcements and drives the
// delta-projection cycle (ProjectDelta + AllocateDelta) the way the
// controller does, measuring what the paper's setting actually demands:
// a cold full rebuild under a second and steady-state dirty cycles
// (~1% churn) in tens of milliseconds.

// ScaleConfig parameterizes the E14 scale run.
type ScaleConfig struct {
	// Prefixes is the table size. Default 1,000,000.
	Prefixes int
	// Seed drives the scenario and the churn. Default 1.
	Seed int64
	// Cycles is the number of steady-state dirty cycles measured.
	// Default 20.
	Cycles int
	// DirtyFrac is the fraction of prefixes whose demand moves beyond
	// tolerance each cycle. Default 0.01.
	DirtyFrac float64
	// RouteChurn is the number of route updates applied per cycle.
	// Default 256.
	RouteChurn int
	// HeavyK / TailEpsilon / TailStride / Epsilon configure the
	// projector (defaults 8192 / 0.25 / 32 / 0.05).
	HeavyK      int
	TailEpsilon float64
	TailStride  int
	Epsilon     float64
}

func (c *ScaleConfig) setDefaults() {
	if c.Prefixes == 0 {
		c.Prefixes = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Cycles == 0 {
		c.Cycles = 20
	}
	if c.DirtyFrac == 0 {
		c.DirtyFrac = 0.01
	}
	if c.RouteChurn == 0 {
		c.RouteChurn = 256
	}
	if c.HeavyK == 0 {
		c.HeavyK = 8192
	}
	if c.TailEpsilon == 0 {
		c.TailEpsilon = 0.25
	}
	if c.TailStride == 0 {
		c.TailStride = 32
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.05
	}
}

// ScaleResult is the E14 report.
type ScaleResult struct {
	Prefixes int
	Routes   int
	// Synth and Load are the scenario-generation and direct-RIB-load
	// wall times (reported for context; not part of any cycle budget).
	Synth, Load time.Duration
	// TableMB is the live-heap growth attributable to the loaded table
	// and demand map, after a GC fence.
	TableMB float64
	// Cold is the first full cycle: complete demand scan, full-table
	// snapshot, projection build, and allocation.
	Cold time.Duration
	// DirtyP50 / DirtyP95 / DirtyMax summarize the steady-state dirty
	// cycles (DirtyFrac demand churn + RouteChurn route updates).
	DirtyP50, DirtyP95, DirtyMax time.Duration
	// Sweep is a warm full rebuild (the periodic safety pass).
	Sweep time.Duration
	// Overrides is the override count of the last cycle; Last carries
	// its delta stats.
	Overrides int
	Last      core.DeltaStats
}

// LoadTable builds a RIB directly from a topology's announcements —
// the converged state BMP would deliver, without the wire.
func LoadTable(topo *netsim.Topology) *rib.Table {
	tab := rib.NewTable(rib.DefaultPolicy())
	for i := range topo.Peers {
		peer := &topo.Peers[i]
		for _, ann := range peer.Announces {
			r := &rib.Route{
				Prefix:    ann.Prefix,
				NextHop:   peer.Addr,
				ASPath:    ann.Path,
				MED:       ann.MED,
				HasMED:    ann.MED != 0,
				PeerAddr:  peer.Addr,
				PeerAS:    peer.AS,
				PeerClass: peer.Class,
				EgressIF:  peer.InterfaceID,
			}
			tab.Accept(r)
		}
	}
	return tab
}

// E14MillionPrefix runs the scale experiment.
func E14MillionPrefix(cfg ScaleConfig) (*ScaleResult, error) {
	cfg.setDefaults()
	res := &ScaleResult{Prefixes: cfg.Prefixes}

	heapMB := func() float64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc) / (1 << 20)
	}
	before := heapMB()

	start := time.Now()
	sc, err := netsim.Synthesize(netsim.SynthConfig{Seed: cfg.Seed, Prefixes: cfg.Prefixes})
	if err != nil {
		return nil, err
	}
	res.Synth = time.Since(start)

	start = time.Now()
	tab := LoadTable(sc.Topo)
	res.Load = time.Since(start)
	res.Routes = tab.RouteCount()

	// Static demand at the scenario's weights; the churn below jitters
	// a rotating window of it.
	demand := make(map[netip.Prefix]float64, len(sc.Prefixes))
	base := make([]float64, len(sc.Prefixes))
	for i, pi := range sc.Prefixes {
		bps := pi.Weight * sc.Config.PeakBps
		demand[pi.Prefix] = bps
		base[i] = bps
	}
	res.TableMB = heapMB() - before

	inv, err := InventoryFromTopology(sc.Topo)
	if err != nil {
		return nil, err
	}
	pj := &core.Projector{
		Epsilon:     cfg.Epsilon,
		HeavyK:      cfg.HeavyK,
		TailEpsilon: cfg.TailEpsilon,
		TailStride:  cfg.TailStride,
		// The experiment times the sweep explicitly; keep it out of the
		// dirty-cycle sample.
		FullSweepEvery: -1,
	}
	acfg := core.AllocatorConfig{Threshold: 0.95}
	var allocState core.AllocState
	installed := map[netip.Prefix]core.Override{}

	runCycle := func() (time.Duration, core.DeltaStats, *core.AllocResult) {
		t0 := time.Now()
		proj, ds := pj.ProjectDelta(tab, demand)
		alloc := core.AllocateDelta(proj, inv, acfg, installed, nil, &ds, &allocState)
		d := time.Since(t0)
		installed = make(map[netip.Prefix]core.Override, len(alloc.Overrides))
		for _, o := range alloc.Overrides {
			installed[o.Prefix] = o
		}
		return d, ds, alloc
	}

	var ds core.DeltaStats
	var alloc *core.AllocResult
	res.Cold, ds, alloc = runCycle()
	// The cold build allocates the bulk of the heap in one burst; collect
	// it here so the resulting background mark doesn't bleed into the
	// steady-state sample below.
	runtime.GC()

	// Steady state: each cycle jitters a rotating DirtyFrac window of
	// demand well past every tolerance and re-announces RouteChurn
	// transit routes (journal-dirty prefixes).
	dirtyN := int(cfg.DirtyFrac * float64(len(sc.Prefixes)))
	if dirtyN < 1 {
		dirtyN = 1
	}
	var durations []time.Duration
	cursor, routeCursor := 0, 0
	transit := transitPeer(sc.Topo)
	for cyc := 0; cyc < cfg.Cycles; cyc++ {
		for k := 0; k < dirtyN; k++ {
			i := (cursor + k) % len(sc.Prefixes)
			f := 1.6
			if cyc%2 == 1 {
				f = 1
			}
			demand[sc.Prefixes[i].Prefix] = base[i] * f
		}
		cursor = (cursor + dirtyN) % len(sc.Prefixes)
		if transit != nil {
			for k := 0; k < cfg.RouteChurn; k++ {
				ann := transit.Announces[(routeCursor+k)%len(transit.Announces)]
				tab.Add(&rib.Route{
					Prefix:    ann.Prefix,
					NextHop:   transit.Addr,
					ASPath:    ann.Path,
					PeerAddr:  transit.Addr,
					PeerAS:    transit.AS,
					PeerClass: transit.Class,
					EgressIF:  transit.InterfaceID,
				})
			}
			routeCursor = (routeCursor + cfg.RouteChurn) % len(transit.Announces)
		}
		var d time.Duration
		d, ds, alloc = runCycle()
		durations = append(durations, d)
	}
	sort.Slice(durations, func(a, b int) bool { return durations[a] < durations[b] })
	res.DirtyP50 = durations[len(durations)/2]
	res.DirtyP95 = durations[len(durations)*95/100]
	res.DirtyMax = durations[len(durations)-1]
	res.Overrides = len(alloc.Overrides)
	res.Last = ds

	// A warm full rebuild — what the periodic safety sweep costs.
	pj.ResetDelta()
	t0 := time.Now()
	proj, _ := pj.ProjectDelta(tab, demand)
	core.AllocateDelta(proj, inv, acfg, installed, nil, nil, &allocState)
	res.Sweep = time.Since(t0)
	return res, nil
}

// transitPeer returns the topology's first transit peer (the route-churn
// source), or nil.
func transitPeer(topo *netsim.Topology) *netsim.Peer {
	for i := range topo.Peers {
		if topo.Peers[i].Class == rib.ClassTransit {
			return &topo.Peers[i]
		}
	}
	return nil
}

// String renders the EXPERIMENTS.md rows.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14 million-prefix scale (%d prefixes, %d routes)\n", r.Prefixes, r.Routes)
	fmt.Fprintf(&b, "  %-28s %12s\n", "phase", "time")
	fmt.Fprintf(&b, "  %-28s %12s\n", "synthesize", r.Synth.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-28s %12s   (%.0f MB live heap)\n", "load RIB", r.Load.Round(time.Millisecond), r.TableMB)
	fmt.Fprintf(&b, "  %-28s %12s\n", "cold full cycle", r.Cold.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-28s %12s\n", "dirty cycle p50", r.DirtyP50.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-28s %12s\n", "dirty cycle p95", r.DirtyP95.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-28s %12s\n", "dirty cycle max", r.DirtyMax.Round(time.Millisecond))
	fmt.Fprintf(&b, "  %-28s %12s\n", "warm full sweep", r.Sweep.Round(time.Millisecond))
	fmt.Fprintf(&b, "  last cycle: %d live, %d recomputed, %d rate-only, %d overrides, heavy-thr %.1f Mbps\n",
		r.Last.Live, r.Last.Recomputed, r.Last.RateOnly, r.Overrides, r.Last.HeavyThr/1e6)
	return b.String()
}
