package exp

import (
	"context"
	"strings"
	"testing"
	"time"

	"edgefabric/internal/core"
	"edgefabric/internal/netsim"
	"edgefabric/internal/rib"
)

// soakTestConfig is the reduced-scale soak base: the testConfig
// scenario (underprovisioned PNIs, peak hour) with the E11 health
// ladder so composed faults walk the full fail-static staircase.
func soakTestConfig() HarnessConfig {
	cfg := testConfig(true)
	cfg.Health = core.HealthConfig{
		TrafficStaleAfter: 45 * time.Second,
		TrafficFailAfter:  150 * time.Second,
		BMPFlushAfter:     90 * time.Second,
	}
	return cfg
}

// TestE16SoakSmoke is the check.sh time-budgeted soak: a reduced-scale
// run of seeded composed chaos with every invariant checked each cycle.
// Zero violations required. The full-scale arm (≥500 cycles) runs via
// `efbench -only E16`.
func TestE16SoakSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()
	res, err := E16ChaosSoak(ctx, SoakConfig{
		Base:        soakTestConfig(),
		Seed:        21,
		Cycles:      120,
		ChaosEvents: 6,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("soak violations:\n%s", res)
	}
	if res.Cycles < 120 {
		t.Errorf("soaked %d cycles, want >= 120", res.Cycles)
	}
	if len(res.Events) != 6 {
		t.Errorf("composed %d events, want 6", len(res.Events))
	}
	// The run must have actually exercised chaos: some event fired and
	// the controller did real work.
	if res.PeakOverrides == 0 {
		t.Error("soak never installed an override — scenario not overloaded?")
	}
	t.Logf("\n%s", res)
}

// TestE16SoakDeterministicTimeline verifies the seed fully determines
// the chaos schedule — the replay contract violations advertise.
func TestE16SoakDeterministicTimeline(t *testing.T) {
	sc, err := netsim.Synthesize(soakTestConfig().Synth)
	if err != nil {
		t.Fatal(err)
	}
	a, err := netsim.ChaosSchedule(sc, netsim.ChaosConfig{Seed: 77, Events: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := netsim.ChaosSchedule(sc, netsim.ChaosConfig{Seed: 77, Events: 10})
	if err != nil {
		t.Fatal(err)
	}
	if netsim.FormatTimeline(a) != netsim.FormatTimeline(b) {
		t.Fatalf("same seed, different timelines:\n%s\nvs\n%s",
			netsim.FormatTimeline(a), netsim.FormatTimeline(b))
	}
	c, err := netsim.ChaosSchedule(sc, netsim.ChaosConfig{Seed: 78, Events: 10})
	if err != nil {
		t.Fatal(err)
	}
	if netsim.FormatTimeline(a) == netsim.FormatTimeline(c) {
		t.Fatal("different seeds produced identical timelines")
	}
}

// TestE16ControlArmReportsViolation is the checker's own regression
// test: pointed at a controller with fail-static disabled during a
// total telemetry blackout, the overload-headroom invariant MUST fire,
// and the report must carry the seed and the event timeline for replay.
func TestE16ControlArmReportsViolation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()
	res, err := E16ControlArm(ctx, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatalf("control arm (fail-static disabled, sFlow blackout) reported no violations:\n%s", res)
	}
	found := false
	for _, v := range res.Violations {
		if v.Invariant == "overload-headroom" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an overload-headroom violation, got: %v", res.Violations)
	}
	out := res.String()
	if !strings.Contains(out, "seed=21") {
		t.Errorf("violation report does not carry the seed:\n%s", out)
	}
	if !strings.Contains(out, "sflow-loss") {
		t.Errorf("violation report does not carry the event timeline:\n%s", out)
	}
	t.Logf("\n%s", res)
}

// TestE16LossyPathQuarantine scripts a single hot lossy-path event
// (well above the optimizer's MaxLossFrac bound) and soaks through it:
// the quarantine invariant must arm for the event, and a correct
// controller must evict the peer from every weighted member set before
// the grace expires — zero violations.
func TestE16LossyPathQuarantine(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()
	base := soakTestConfig()
	sc, err := netsim.Synthesize(base.Synth)
	if err != nil {
		t.Fatal(err)
	}
	var peerName string
	for i := range sc.Topo.Peers {
		if sc.Topo.Peers[i].Class != rib.ClassTransit {
			peerName = sc.Topo.Peers[i].Name
			break
		}
	}
	if peerName == "" {
		t.Fatal("scenario has no non-transit peer")
	}
	res, err := E16ChaosSoak(ctx, SoakConfig{
		Base:   base,
		Seed:   21,
		Cycles: 70,
		Events: []netsim.Event{{
			Kind:      netsim.EventLossyPath,
			Peer:      peerName,
			At:        4 * time.Minute,
			Duration:  25 * time.Minute,
			Magnitude: 0.18,
		}},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossyWindows != 1 {
		t.Errorf("armed %d lossy quarantine windows, want 1", res.LossyWindows)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("soak violations:\n%s", res)
	}
	t.Logf("\n%s", res)
}
