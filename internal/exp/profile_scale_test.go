package exp

import (
	"os"
	"strconv"
	"testing"
)

// TestE14Profile is a profiling hook, skipped unless E14PROF is set to
// a prefix count. It exists so the E14 scale run can be put under the
// standard test profilers without dragging a multi-gigabyte experiment
// into the regular suite:
//
//	E14PROF=1000000 go test ./internal/exp -run TestE14Profile \
//	    -cpuprofile cpu.out -memprofile mem.out
func TestE14Profile(t *testing.T) {
	n, _ := strconv.Atoi(os.Getenv("E14PROF"))
	if n == 0 {
		t.Skip("profiling hook: set E14PROF=<prefix count> to run")
	}
	res, err := E14MillionPrefix(ScaleConfig{Prefixes: n, Cycles: 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(res.String())
}
