package exp

import (
	"context"
	"testing"
	"time"
)

// TestE18ShiftSmoke runs a reduced-scale E18: a 3-PoP fleet through a
// region-loss and an anycast re-homing episode, asserting the hosted
// and isolated twins decide identically and every shifted PoP's demand
// measurably moved and was absorbed.
func TestE18ShiftSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("E18 smoke builds six PoPs")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 240*time.Second)
	defer cancel()
	base := testConfig(true)
	base.Synth.Prefixes = 120
	base.Synth.EdgeASes = 25
	base.Synth.PublicPeers = 6
	base.Synth.RouteServerMembers = 8
	res, err := E18FleetShift(ctx, FleetShiftConfig{
		Base:       base,
		PoPs:       3,
		Quiet:      150 * time.Second,
		EpisodeLen: 4 * time.Minute,
		Gap:        2 * time.Minute,
		Tail:       2 * time.Minute,
	})
	if err != nil {
		t.Fatalf("E18 aborted: %v", err)
	}
	t.Log(res.String())

	if res.IdenticalCycles != res.ComparedCycles || res.ComparedCycles == 0 {
		t.Errorf("identical cycles = %d/%d; first mismatch: %s",
			res.IdenticalCycles, res.ComparedCycles, res.FirstMismatch)
	}
	if len(res.Episodes) != 2 {
		t.Fatalf("episodes = %d, want 2", len(res.Episodes))
	}
	for _, ep := range res.Episodes {
		for _, row := range ep.Rows {
			if !row.Healthy {
				t.Errorf("%s %s: left healthy during the shift window", ep.Kind, row.PoP)
			}
			if row.Mult > 1 && row.DemandRatio < 1+0.5*(row.Mult-1) {
				t.Errorf("%s %s: demand ratio %.2f, want >= %.2f (shift did not land)",
					ep.Kind, row.PoP, row.DemandRatio, 1+0.5*(row.Mult-1))
			}
			if row.Mult < 1 && row.DemandRatio > 1-0.5*(1-row.Mult) {
				t.Errorf("%s %s: demand ratio %.2f, want <= %.2f (loss did not drain)",
					ep.Kind, row.PoP, row.DemandRatio, 1-0.5*(1-row.Mult))
			}
		}
	}
	if !res.Pass() {
		t.Errorf("Pass() = false on a run with no individual failures:\n%s", res.String())
	}
}
