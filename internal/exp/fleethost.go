package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"edgefabric/internal/api"
	"edgefabric/internal/core"
	"edgefabric/internal/sflow"
)

// FleetHost runs a whole Fleet's controllers inside one process — the
// daemon's --fleet mode in harness form. Unlike Fleet (independent
// harnesses, one collector each), the member PoPs share a single sFlow
// ingest point: every router exports into one Demux, which routes each
// datagram to its PoP's collector by agent address. Everything else —
// inventories, route stores, BMP feeds, injection sessions, health
// ladders — stays strictly per-PoP, so one member entering fail-static
// never gates another.
type FleetHost struct {
	Fleet
	// Demux is the shared ingest point standing in for the process's
	// one UDP listener.
	Demux *sflow.Demux
	// API is the versioned PoP-scoped surface over every member
	// controller.
	API *api.Server
	// Supervisor hosts the controller-enabled members: drain/resume
	// gating (a drained member's harness pauses cycling via
	// SetCyclesPaused) and fleet-level counters.
	Supervisor *core.FleetSupervisor
	// Reconciler rolls declarative config across the supervised
	// members; also reachable through the API's /v1/fleet/reconcile
	// and PUT /v1/pops/{pop}/config.
	Reconciler *core.Reconciler
}

// NewFleetHost builds and converges a fleet sharing one sFlow demux and
// one API server. Controller-enabled members register with the API under
// their PoP name.
func NewFleetHost(ctx context.Context, cfg FleetConfig) (*FleetHost, error) {
	cfg.setDefaults()
	cfgs := make([]HarnessConfig, cfg.PoPs)
	for i := range cfgs {
		cfgs[i] = cfg.popConfig(i)
	}
	return NewFleetHostFromConfigs(ctx, cfgs)
}

// NewFleetHostFromConfigs builds a fleet host from explicit per-member
// harness configs (the daemon's --fleet mode derives these from its
// fleet file). Each member's SFlowDemux is forced to the shared demux;
// a zero PoPIndex is assigned positionally so router IDs stay disjoint.
//
// Members build concurrently through a bounded worker pool — at
// hundreds of PoPs, sequential BGP convergence would dominate startup —
// then register with the API and supervisor in index order so names,
// pagination cursors, and rollout order stay deterministic.
func NewFleetHostFromConfigs(ctx context.Context, cfgs []HarnessConfig) (*FleetHost, error) {
	fh := &FleetHost{Demux: sflow.NewDemux(), API: api.NewServer()}
	built := make([]*Harness, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := min(runtime.GOMAXPROCS(0), len(cfgs))
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				hc := cfgs[i]
				hc.SFlowDemux = fh.Demux
				if hc.Synth.PoPIndex == 0 {
					hc.Synth.PoPIndex = i + 1
				}
				built[i], errs[i] = NewHarness(ctx, hc)
			}
		}()
	}
	for i := range cfgs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			continue
		}
		for _, h := range built {
			if h != nil {
				h.Close()
			}
		}
		return nil, fmt.Errorf("exp: fleet host pop %d: %w", i+1, err)
	}

	fh.Supervisor = core.NewFleetSupervisor(core.FleetSupervisorConfig{})
	for i, h := range built {
		fh.PoPs = append(fh.PoPs, h)
		if h.Controller == nil {
			continue
		}
		if err := fh.API.AddPoP(h.Scenario.Topo.Name, h.Controller); err != nil {
			fh.Close()
			return nil, err
		}
		if err := fh.Supervisor.Add(core.FleetMember{
			Name:  h.Scenario.Topo.Name,
			Ctrl:  h.Controller,
			Pause: h.SetCyclesPaused,
		}); err != nil {
			fh.Close()
			return nil, fmt.Errorf("exp: fleet host pop %d: %w", i+1, err)
		}
	}
	if len(fh.Supervisor.Members()) > 0 {
		fh.Reconciler = core.NewReconciler(fh.Supervisor, core.ReconcilerConfig{})
		fh.API.SetReconciler(fh.Reconciler)
	}
	return fh, nil
}

// StepAll advances every member PoP one tick (a paused member ticks its
// dataplane and clock but skips its controller cycle) and then advances
// any in-flight config rollout one reconciliation step.
func (fh *FleetHost) StepAll() {
	for _, h := range fh.PoPs {
		h.Step()
	}
	if fh.Reconciler != nil {
		fh.Reconciler.Step()
	}
}
