package exp

import (
	"context"
	"fmt"

	"edgefabric/internal/api"
	"edgefabric/internal/sflow"
)

// FleetHost runs a whole Fleet's controllers inside one process — the
// daemon's --fleet mode in harness form. Unlike Fleet (independent
// harnesses, one collector each), the member PoPs share a single sFlow
// ingest point: every router exports into one Demux, which routes each
// datagram to its PoP's collector by agent address. Everything else —
// inventories, route stores, BMP feeds, injection sessions, health
// ladders — stays strictly per-PoP, so one member entering fail-static
// never gates another.
type FleetHost struct {
	Fleet
	// Demux is the shared ingest point standing in for the process's
	// one UDP listener.
	Demux *sflow.Demux
	// API is the versioned PoP-scoped surface over every member
	// controller.
	API *api.Server
}

// NewFleetHost builds and converges a fleet sharing one sFlow demux and
// one API server. Controller-enabled members register with the API under
// their PoP name.
func NewFleetHost(ctx context.Context, cfg FleetConfig) (*FleetHost, error) {
	cfg.setDefaults()
	cfgs := make([]HarnessConfig, cfg.PoPs)
	for i := range cfgs {
		cfgs[i] = cfg.popConfig(i)
	}
	return NewFleetHostFromConfigs(ctx, cfgs)
}

// NewFleetHostFromConfigs builds a fleet host from explicit per-member
// harness configs (the daemon's --fleet mode derives these from its
// fleet file). Each member's SFlowDemux is forced to the shared demux;
// a zero PoPIndex is assigned positionally so router IDs stay disjoint.
func NewFleetHostFromConfigs(ctx context.Context, cfgs []HarnessConfig) (*FleetHost, error) {
	fh := &FleetHost{Demux: sflow.NewDemux(), API: api.NewServer()}
	for i, hc := range cfgs {
		hc.SFlowDemux = fh.Demux
		if hc.Synth.PoPIndex == 0 {
			hc.Synth.PoPIndex = i + 1
		}
		h, err := NewHarness(ctx, hc)
		if err != nil {
			fh.Close()
			return nil, fmt.Errorf("exp: fleet host pop %d: %w", i+1, err)
		}
		fh.PoPs = append(fh.PoPs, h)
		if h.Controller != nil {
			if err := fh.API.AddPoP(h.Scenario.Topo.Name, h.Controller); err != nil {
				fh.Close()
				return nil, err
			}
		}
	}
	return fh, nil
}
