package exp

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edgefabric/internal/bgp"
	"edgefabric/internal/bmp"
	"edgefabric/internal/core"
	"edgefabric/internal/netsim"
	"edgefabric/internal/rib"
	"edgefabric/internal/sflow"
)

// E15: ingest saturation. PR 6 took the decision path to a million
// prefixes; this experiment measures the telemetry path feeding it.
// Four arms:
//
//  1. in-process sFlow throughput, single PoP: packets/sec through the
//     streaming-decode + sharded-accumulate pipeline vs. a faithful
//     replica of the seed path (allocating Decode + one global mutex);
//  2. the same comparison through the fleet Demux (header-peek routing
//     vs. the seed's full decode per datagram);
//  3. UDP saturation: offered rate vs. decoded/dropped over real
//     sockets and the multi-reader serve loop;
//  4. BMP dump absorption: table-snapshot cycle latency while a full
//     dump replays through the batched OnRoute path, vs. idle baseline.

// IngestConfig parameterizes E15.
type IngestConfig struct {
	// Packets per in-process throughput trial. Default 300,000.
	Packets int
	// Records per datagram (flow samples batch records the way real
	// exporters do). Default 16.
	Records int
	// Prefixes is the destination /24 spread — how many distinct
	// prefixes the sliding window ends up tracking. Default 131072,
	// the order of what a PoP-scale controller watches.
	Prefixes int
	// Workers is the concurrent ingest fan-in: sender goroutines for
	// the in-process arms, and the socket/reader pool width for the
	// UDP arm. Default 8 — socket fan-out is I/O concurrency, not CPU
	// parallelism: SO_REUSEPORT spreads kernel buffering across the
	// pool even on a single-core host, so burst deficits during a
	// consumer read are split across the pool instead of overflowing
	// one socket.
	Workers int
	// UDPRates is the offered-rate ladder in packets/sec, run against
	// both the seed serve loop and the new pipeline. Default
	// {2k, 5k, 10k, 20k, 30k, 40k, 80k, 120k, 160k, 200k, 240k}.
	UDPRates []int
	// UDPSeconds is the send time per ladder point. Default 2.0.
	UDPSeconds float64
	// UDPBufBytes is the kernel receive buffer both UDP arms get —
	// identical per-socket provisioning so the software path is the
	// only variable. Default 1 MiB (generous against Linux's ~208 KiB
	// default; subject to the host's rmem_max cap). A buffer absorbs
	// one-off burst deficits but not sustained starvation, so it does
	// not mask the seed path's read-side stalls.
	UDPBufBytes int
	// SkipUDP skips the socket arm (smoke runs in sandboxes without
	// loopback headroom).
	SkipUDP bool
	// DumpPrefixes sizes the BMP dump arm's table. Default 100,000
	// (1,000,000 at paper scale).
	DumpPrefixes int
	// DumpRate paces the replay in routes/sec. Default 200,000 — a
	// deliberate pace so that on a single-core host the arm measures
	// lock behavior, not raw CPU sharing.
	DumpRate int
	// Cycles is the number of snapshot cycles measured per dump arm.
	// Default 60 — p95 over fewer cycles is too noisy to gate on.
	Cycles int
	// Seed drives the synthesized scenario. Default 1.
	Seed int64
}

func (c *IngestConfig) setDefaults() {
	if c.Packets == 0 {
		c.Packets = 300_000
	}
	if c.Records == 0 {
		c.Records = 16
	}
	if c.Prefixes == 0 {
		c.Prefixes = 131072
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if len(c.UDPRates) == 0 {
		c.UDPRates = []int{2_000, 5_000, 10_000, 20_000, 30_000, 40_000, 80_000, 120_000, 160_000, 200_000, 240_000}
	}
	if c.UDPSeconds == 0 {
		c.UDPSeconds = 2.0
	}
	if c.UDPBufBytes == 0 {
		c.UDPBufBytes = 1 << 20
	}
	if c.DumpPrefixes == 0 {
		c.DumpPrefixes = 100_000
	}
	if c.DumpRate == 0 {
		c.DumpRate = 200_000
	}
	if c.Cycles == 0 {
		c.Cycles = 60
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// UDPPoint is one offered-rate measurement.
type UDPPoint struct {
	OfferedPPS int
	Sent       uint64
	Decoded    uint64
	Malformed  uint64
	Dropped    uint64
}

// IngestResult is the E15 report.
type IngestResult struct {
	Workers int
	Records int

	// In-process throughput, packets/sec (records/sec = pps * Records).
	SeedPPS    float64
	ShardedPPS float64
	SpeedupX   float64

	// Fleet demux throughput.
	SeedDemuxPPS    float64
	ShardedDemuxPPS float64
	DemuxSpeedupX   float64

	// UDP saturation ladders, seed serve loop vs the multi-reader
	// pipeline, both under a live rates consumer.
	SeedUDP            []UDPPoint
	NewUDP             []UDPPoint
	SeedMaxZeroDropPPS int
	MaxZeroDropPPS     int
	UDPSustainX        float64

	// Dump absorption.
	DumpRoutes       int
	DumpRate         int
	ReplayedRoutes   int
	BaseP50, BaseP95 time.Duration
	DumpP50, DumpP95 time.Duration
	InflationX       float64
}

// mapper24 maps sampled destinations to their /24 — the cheapest
// realistic stand-in for the route-table LPM, identical cost for both
// ingest paths under comparison.
type mapper24 struct{}

func (mapper24) MapPrefix(a netip.Addr) netip.Prefix {
	p, _ := a.Prefix(24)
	return p
}

// seedIngester is a faithful replica of the pre-sharding ingest path:
// fully-allocating Decode, then accumulation under one global mutex
// with per-bucket timestamps. The comparison is honest only against
// the real thing, and the real thing no longer exists in the tree.
type seedIngester struct {
	mapper sflow.PrefixMapper
	now    func() time.Time

	datagrams atomic.Uint64

	mu         sync.Mutex
	bucketSpan time.Duration
	window     time.Duration
	buckets    []map[netip.Prefix]float64
	times      []time.Time
	cur        int
	dropped    uint64
}

func newSeedIngester(now func() time.Time) *seedIngester {
	const window, nbuckets = time.Minute, 6
	s := &seedIngester{
		mapper:     mapper24{},
		now:        now,
		bucketSpan: window / nbuckets,
		window:     window,
		buckets:    make([]map[netip.Prefix]float64, nbuckets),
		times:      make([]time.Time, nbuckets),
	}
	t0 := now()
	for i := range s.buckets {
		s.buckets[i] = make(map[netip.Prefix]float64)
		s.times[i] = t0
	}
	return s
}

func (s *seedIngester) rotate(now time.Time) {
	for now.Sub(s.times[s.cur]) >= s.bucketSpan {
		next := (s.cur + 1) % len(s.buckets)
		clear(s.buckets[next])
		s.times[next] = s.times[s.cur].Add(s.bucketSpan)
		s.cur = next
		if now.Sub(s.times[s.cur]) >= s.window*2 {
			for i := range s.buckets {
				clear(s.buckets[i])
				s.times[i] = now
			}
			s.cur = 0
			return
		}
	}
}

func (s *seedIngester) SendDatagram(b []byte) error {
	d, err := sflow.Decode(b)
	if err != nil {
		return err
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotate(now)
	for _, sm := range d.Samples {
		scale := float64(sm.SamplingRate)
		for _, r := range sm.Records {
			p := s.mapper.MapPrefix(r.Dst)
			if !p.IsValid() {
				s.dropped++
				continue
			}
			s.buckets[s.cur][p] += float64(r.FrameLen) * scale
		}
	}
	s.datagrams.Add(1)
	return nil
}

// Rates replicates the seed collector's read path: a full cross-bucket
// merge into a freshly allocated map, performed under the same mutex
// ingest takes. (The seed kept a merge cache, but live ingest
// invalidated it on every datagram, so under load every read paid the
// full merge.) This is the read that stalls the seed's serve loop.
func (s *seedIngester) Rates() map[netip.Prefix]float64 {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotate(now)
	totals := make(map[netip.Prefix]float64)
	oldest := now
	for i := range s.buckets {
		if s.times[i].Before(oldest) {
			oldest = s.times[i]
		}
		for p, b := range s.buckets[i] {
			totals[p] += b
		}
	}
	secs := now.Sub(oldest).Seconds()
	if min := s.bucketSpan.Seconds(); secs < min {
		secs = min
	}
	for p, b := range totals {
		totals[p] = b * 8 / secs
	}
	return totals
}

// serveUDP replicates the seed's single-goroutine serve loop: one
// socket, one reader, the allocating SendDatagram per packet.
func (s *seedIngester) serveUDP(ctx context.Context, conn net.PacketConn) {
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	buf := make([]byte, sflow.MaxDatagramLen)
	for {
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			return
		}
		_ = s.SendDatagram(buf[:n])
	}
}

// ingestPackets builds the pre-encoded datagram working set: agents
// round-robin (for the demux arm), destinations spread across the
// prefix space, frame lengths varied.
func ingestPackets(cfg *IngestConfig, agents []netip.Addr) [][]byte {
	// Enough distinct datagrams that every prefix in the spread shows
	// up in the window.
	nDistinct := (cfg.Prefixes + cfg.Records - 1) / cfg.Records
	if nDistinct < 256 {
		nDistinct = 256
	}
	pkts := make([][]byte, 0, nDistinct)
	for i := 0; i < nDistinct; i++ {
		recs := make([]sflow.FlowRecord, cfg.Records)
		for j := range recs {
			pi := (i*cfg.Records + j) % cfg.Prefixes
			recs[j] = sflow.FlowRecord{
				Dst:      netip.AddrFrom4([4]byte{10, byte(pi >> 8 % 256), byte(pi % 256), byte(1 + j%250)}),
				FrameLen: uint32(64 + (i*37+j*131)%1400),
				EgressIF: uint32(j % 8),
			}
		}
		d := &sflow.Datagram{
			Agent: agents[i%len(agents)],
			Seq:   uint32(i),
			Samples: []sflow.FlowSample{{
				Seq:          uint32(i),
				SamplingRate: 8192,
				SamplePool:   uint32(cfg.Records) * 8192,
				Records:      recs,
			}},
		}
		b, err := sflow.MarshalBytes(d)
		if err != nil {
			panic(err) // static input; cannot fail
		}
		pkts = append(pkts, b)
	}
	return pkts
}

// warmClock is a wall clock with a settable forward offset, letting a
// fresh collector be walked through a full window of history before
// live traffic starts. Freezing it pins ingest time for the
// measurement window so no bucket rotation (and its map reallocation
// burst) lands mid-measurement — the same pin is applied to both
// paths, so neither gains from it.
type warmClock struct {
	offset atomic.Int64
	frozen atomic.Int64 // unix nanos; 0 means live
}

func (w *warmClock) Now() time.Time {
	if f := w.frozen.Load(); f != 0 {
		return time.Unix(0, f)
	}
	return time.Now().Add(time.Duration(w.offset.Load()))
}

func (w *warmClock) Freeze() { w.frozen.Store(w.Now().UnixNano()) }

// prefill walks sink through a full sliding window of the packet set —
// one batch per bucket span, advancing the clock between batches — so
// measurements start from the steady state of a collector that has
// been ingesting for at least one window: every bucket populated,
// every prefix in the spread tracked. A cold collector flatters the
// seed path (its full-window read merge is near-empty).
func prefill(sink sflow.Sink, wc *warmClock, pkts [][]byte) {
	const spans = 6
	span := time.Minute / spans
	for e := 0; e < spans; e++ {
		wc.offset.Add(int64(span))
		for _, p := range pkts {
			_ = sink.SendDatagram(p)
		}
	}
}

// measureThroughput pushes total packets through sink from workers
// goroutines and reports packets/sec.
func measureThroughput(sink sflow.Sink, pkts [][]byte, total, workers int) float64 {
	var wg sync.WaitGroup
	per := total / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := sink.SendDatagram(pkts[(w*per+i)%len(pkts)]); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(per*workers) / time.Since(start).Seconds()
}

// seedDemux replicates the pre-PR fleet demux: a full Decode per
// datagram just to learn the agent, then structured ingest.
type seedDemux struct {
	byAgent map[netip.Addr]*seedIngester
}

func (d *seedDemux) SendDatagram(b []byte) error {
	dg, err := sflow.Decode(b)
	if err != nil {
		return err
	}
	s := d.byAgent[dg.Agent.Unmap()]
	if s == nil {
		return nil
	}
	// The seed demux handed the decoded datagram to Collector.Ingest;
	// re-fold it through the replica's accumulate loop.
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rotate(now)
	for _, sm := range dg.Samples {
		scale := float64(sm.SamplingRate)
		for _, r := range sm.Records {
			p := s.mapper.MapPrefix(r.Dst)
			if !p.IsValid() {
				s.dropped++
				continue
			}
			s.buckets[s.cur][p] += float64(r.FrameLen) * scale
		}
	}
	return nil
}

// offerUDP paces rate packets/sec at raddr for cfg.UDPSeconds from a
// pool of sender sockets and returns how many sends succeeded.
func offerUDP(cfg *IngestConfig, pkts [][]byte, rate int, raddr string) uint64 {
	var sent atomic.Uint64
	var swg sync.WaitGroup
	deadline := time.Now().Add(time.Duration(cfg.UDPSeconds * float64(time.Second)))
	// Several sender flows per listener socket, so the kernel's flow
	// hash spreads load across the SO_REUSEPORT pool without one
	// socket drawing an outsized share.
	senders := cfg.Workers * 4
	for w := 0; w < senders; w++ {
		swg.Add(1)
		go func(w int) {
			defer swg.Done()
			// One source socket per sender: distinct 4-tuples let
			// SO_REUSEPORT spread flows across the listener pool.
			conn, err := net.Dial("udp", raddr)
			if err != nil {
				return
			}
			defer conn.Close()
			uc := conn.(*net.UDPConn)
			perWorker := rate / senders
			if perWorker < 1 {
				perWorker = 1
			}
			burst := perWorker / 500 // ~2ms bursts
			if burst < 1 {
				burst = 1
			}
			interval := time.Duration(float64(burst) / float64(perWorker) * float64(time.Second))
			next := time.Now()
			batch := make([][]byte, 0, burst)
			i := w
			for time.Now().Before(deadline) {
				batch = batch[:0]
				for b := 0; b < burst; b++ {
					batch = append(batch, pkts[i%len(pkts)])
					i++
				}
				// Batched sends keep the harness's own syscall cost from
				// capping the offered rate.
				if n, _ := sflow.WriteBatch(uc, batch); n > 0 {
					sent.Add(uint64(n))
				}
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
		}(w)
	}
	swg.Wait()
	return sent.Load()
}

// udpLadderPoint measures one offered rate against a freshly started
// server. setup returns the listen address, a decoded/malformed
// counter, and a teardown.
func udpLadderPoint(cfg *IngestConfig, pkts [][]byte, rate int,
	setup func() (string, func() (uint64, uint64), func(), error)) (UDPPoint, error) {
	raddr, counts, stop, err := setup()
	if err != nil {
		return UDPPoint{}, err
	}
	defer stop()
	// Collect the prefill garbage and settle before offering load, so
	// a GC cycle owed to setup doesn't land inside the measurement.
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	sent := offerUDP(cfg, pkts, rate, raddr)
	// Drain: wait until the decoded count stops moving.
	var last uint64
	for i := 0; i < 50; i++ {
		time.Sleep(20 * time.Millisecond)
		d, _ := counts()
		if d == last && i > 2 {
			break
		}
		last = d
	}
	decoded, malformed := counts()
	pt := UDPPoint{OfferedPPS: rate, Sent: sent, Decoded: decoded, Malformed: malformed}
	if got := decoded + malformed; sent > got {
		pt.Dropped = sent - got
	}
	return pt, nil
}

// runUDPArm offers the same paced ladder to the seed serve loop and to
// the multi-reader pipeline. Both servers get identical kernel buffers
// and the same live consumer load a production collector serves: a
// controller cycle reading the full rate map every 2 s, plus
// explain/dashboard point-rate queries at 2 Hz. The asymmetry is in
// what that load costs each implementation — the seed answered a
// point query by building the entire rate map under the ingest mutex,
// stalling the serve loop until the kernel buffer overflowed; the
// sharded collector answers it from one shard's buckets.
func runUDPArm(cfg *IngestConfig, pkts [][]byte, res *IngestResult) error {
	// Damp GC cadence during the ladder: on a small host a mid-window
	// GC assist stalls whichever reader happens to be running and
	// flips marginal rungs run-to-run. Applied identically to both
	// paths, so neither gains.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	// Consumer cadences: a controller cycle reads the full demand map
	// every 2 s; explain/dashboard point queries arrive at 8 Hz — a
	// dashboard refreshing a handful of prefixes once a second, or a
	// couple of operators poking explain endpoints during an incident.
	// Point queries are exactly the load the seed path had no cheap
	// answer for: its only point read was Rates()[p], a full merge
	// under the ingest mutex.
	const (
		cyclePollEvery   = 2 * time.Second
		explainPollEvery = 125 * time.Millisecond
	)

	startPoller := func(every time.Duration, poll func()) (stop func()) {
		done := make(chan struct{})
		var pwg sync.WaitGroup
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			tick := time.NewTicker(every)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					poll()
				}
			}
		}()
		return func() { close(done); pwg.Wait() }
	}
	// The point-rate query target: any prefix inside the spread.
	explainPfx := netip.MustParsePrefix("10.0.5.0/24")

	for _, rate := range cfg.UDPRates {
		// Seed path: one socket, one reader, allocating decode, reads
		// under the ingest mutex.
		seedPt, err := udpLadderPoint(cfg, pkts, rate, func() (string, func() (uint64, uint64), func(), error) {
			conn, err := net.ListenPacket("udp", "127.0.0.1:0")
			if err != nil {
				return "", nil, nil, err
			}
			if uc, ok := conn.(*net.UDPConn); ok {
				_ = uc.SetReadBuffer(cfg.UDPBufBytes)
			}
			wc := &warmClock{}
			s := newSeedIngester(wc.Now)
			prefill(s, wc, pkts)
			wc.Freeze()
			base := s.datagrams.Load()
			ctx, cancel := context.WithCancel(context.Background())
			go s.serveUDP(ctx, conn)
			stopCycle := startPoller(cyclePollEvery, func() { _ = s.Rates() })
			// The seed's only point-rate API was Rates()[p]: every
			// explain query built the full map under the ingest mutex.
			stopExplain := startPoller(explainPollEvery, func() { _ = s.Rates()[explainPfx] })
			counts := func() (uint64, uint64) { return s.datagrams.Load() - base, 0 }
			return conn.LocalAddr().String(), counts, func() { stopCycle(); stopExplain(); cancel() }, nil
		})
		if err != nil {
			return err
		}
		res.SeedUDP = append(res.SeedUDP, seedPt)
		if seedPt.Dropped == 0 && rate > res.SeedMaxZeroDropPPS {
			res.SeedMaxZeroDropPPS = rate
		}

		// Sharded pipeline, same buffers, same consumer cadence.
		newPt, err := udpLadderPoint(cfg, pkts, rate, func() (string, func() (uint64, uint64), func(), error) {
			conns, err := sflow.ListenUDP("127.0.0.1:0", cfg.Workers)
			if err != nil {
				return "", nil, nil, err
			}
			for _, c := range conns {
				if uc, ok := c.(*net.UDPConn); ok {
					_ = uc.SetReadBuffer(cfg.UDPBufBytes)
				}
			}
			wc := &warmClock{}
			col := sflow.NewCollector(sflow.CollectorConfig{Mapper: mapper24{}, Readers: cfg.Workers, Now: wc.Now})
			prefill(col, wc, pkts)
			wc.Freeze()
			baseD, baseM, _ := col.Stats()
			ctx, cancel := context.WithCancel(context.Background())
			served := make(chan struct{})
			go func() {
				_ = col.ServeUDPConns(ctx, conns)
				close(served)
			}()
			var buf map[netip.Prefix]float64
			stopCycle := startPoller(cyclePollEvery, func() { buf = col.RatesInto(buf) })
			stopExplain := startPoller(explainPollEvery, func() { _ = col.Rate(explainPfx) })
			counts := func() (uint64, uint64) {
				d, m, _ := col.Stats()
				return d - baseD, m - baseM
			}
			return conns[0].LocalAddr().String(), counts, func() { stopCycle(); stopExplain(); cancel(); <-served }, nil
		})
		if err != nil {
			return err
		}
		res.NewUDP = append(res.NewUDP, newPt)
		if newPt.Dropped == 0 && rate > res.MaxZeroDropPPS {
			res.MaxZeroDropPPS = rate
		}
	}
	if res.SeedMaxZeroDropPPS > 0 {
		res.UDPSustainX = float64(res.MaxZeroDropPPS) / float64(res.SeedMaxZeroDropPPS)
	}
	return nil
}

// runDumpArm measures the control cycle's table read path — a full
// SnapshotRoutesInto plus a ChangedSince poll, the collect work a cycle
// does per prefix — idle and then while a complete BMP dump replays
// through the batched OnRoute path at a paced rate.
func runDumpArm(cfg *IngestConfig, res *IngestResult) error {
	// Same GC damping as the UDP arm: idle and dump phases are both
	// measured under it, so the inflation ratio is unaffected.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	sc, err := netsim.Synthesize(netsim.SynthConfig{Seed: cfg.Seed, Prefixes: cfg.DumpPrefixes})
	if err != nil {
		return err
	}
	inv, err := InventoryFromTopology(sc.Topo)
	if err != nil {
		return err
	}
	store := core.NewRouteStore(inv)

	// All replay messages are built once up front: OnRoute copies what
	// it keeps, so the messages are reusable across replays, and the
	// replay loop itself then allocates nothing — the only allocation
	// during a measured dump is the store's own, which is the system
	// cost under test rather than harness garbage feeding the GC.
	var msgs []*bmp.RouteMonitoring
	for i := range sc.Topo.Peers {
		p := &sc.Topo.Peers[i]
		for j := range p.Announces {
			ann := &p.Announces[j]
			msgs = append(msgs, &bmp.RouteMonitoring{
				Peer: bmp.PeerHeader{PeerAddr: p.Addr, PeerAS: p.AS},
				Update: &bgp.Update{
					Attrs: bgp.PathAttrs{
						HasOrigin: true,
						ASPath:    bgp.Sequence(ann.Path...),
						NextHop:   p.Addr,
						MED:       ann.MED,
						HasMED:    ann.MED != 0,
					},
					NLRI: []netip.Prefix{ann.Prefix},
				},
			})
		}
	}
	replayOnce := func(paced bool, stopAt func() bool) int {
		n := 0
		// Small chunks keep each paced burst's CPU time well under a
		// snapshot cycle, so a cycle that lands mid-replay overlaps a
		// sliver of dump work instead of absorbing a whole burst.
		chunk := 1024
		chunkDur := time.Duration(float64(chunk) / float64(cfg.DumpRate) * float64(time.Second))
		next := time.Now().Add(chunkDur)
		for _, m := range msgs {
			store.OnRoute("pr", m)
			n++
			if n%chunk == 0 {
				if stopAt != nil && stopAt() {
					store.FlushRoutes()
					return n
				}
				if paced {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(chunkDur)
				}
			}
		}
		store.FlushRoutes()
		return n
	}

	// Initial table load (the converged pre-reconnect state), untimed.
	replayOnce(false, nil)
	res.DumpRoutes = store.Table().RouteCount()
	res.DumpRate = cfg.DumpRate

	tab := store.Table()
	prefixes := tab.Prefixes()
	var views []rib.RouteView
	var changedBuf []netip.Prefix
	since := tab.Version()
	cycle := func() time.Duration {
		t0 := time.Now()
		views = tab.SnapshotRoutesInto(prefixes, views)
		var ok bool
		changedBuf, since, ok = tab.ChangedSince(since, changedBuf)
		_ = ok // overflow during a dump is expected: consumers full-scan
		return time.Since(t0)
	}
	measure := func() (p50, p95 time.Duration) {
		ds := make([]time.Duration, 0, cfg.Cycles)
		for i := 0; i < cfg.Cycles; i++ {
			ds = append(ds, cycle())
			time.Sleep(5 * time.Millisecond)
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		return ds[len(ds)/2], ds[len(ds)*95/100]
	}

	res.BaseP50, res.BaseP95 = measure()

	// Dump arm: replay loops at the paced rate for the whole
	// measurement window.
	var stop atomic.Bool
	var replayed atomic.Int64
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for !stop.Load() {
			replayed.Add(int64(replayOnce(true, func() bool { return stop.Load() })))
		}
	}()
	// Let the replay actually start before sampling.
	time.Sleep(20 * time.Millisecond)
	res.DumpP50, res.DumpP95 = measure()
	stop.Store(true)
	rwg.Wait()
	res.ReplayedRoutes = int(replayed.Load())
	if res.BaseP95 > 0 {
		res.InflationX = float64(res.DumpP95) / float64(res.BaseP95)
	}
	return nil
}

// E15IngestSaturation runs the ingest experiment.
func E15IngestSaturation(cfg IngestConfig) (*IngestResult, error) {
	cfg.setDefaults()
	res := &IngestResult{Workers: cfg.Workers, Records: cfg.Records}

	agents := []netip.Addr{
		netip.MustParseAddr("10.255.1.1"),
		netip.MustParseAddr("10.255.2.1"),
		netip.MustParseAddr("10.255.3.1"),
		netip.MustParseAddr("10.255.4.1"),
	}
	pkts := ingestPackets(&cfg, agents)

	// Arm 1: in-process throughput, single PoP, from steady state.
	wc1 := &warmClock{}
	seed := newSeedIngester(wc1.Now)
	prefill(seed, wc1, pkts)
	res.SeedPPS = measureThroughput(seed, pkts, cfg.Packets, cfg.Workers)
	runtime.GC()
	wc2 := &warmClock{}
	col := sflow.NewCollector(sflow.CollectorConfig{Mapper: mapper24{}, Now: wc2.Now})
	prefill(col, wc2, pkts)
	res.ShardedPPS = measureThroughput(col, pkts, cfg.Packets, cfg.Workers)
	res.SpeedupX = res.ShardedPPS / res.SeedPPS
	runtime.GC()

	// Arm 2: fleet demux (4 registered PoPs).
	wc3 := &warmClock{}
	sd := &seedDemux{byAgent: make(map[netip.Addr]*seedIngester)}
	for _, a := range agents {
		sd.byAgent[a] = newSeedIngester(wc3.Now)
	}
	prefill(sd, wc3, pkts)
	res.SeedDemuxPPS = measureThroughput(sd, pkts, cfg.Packets, cfg.Workers)
	runtime.GC()
	wc4 := &warmClock{}
	dm := sflow.NewDemux()
	for _, a := range agents {
		dm.Register(a, sflow.NewCollector(sflow.CollectorConfig{Mapper: mapper24{}, Now: wc4.Now}))
	}
	prefill(dm, wc4, pkts)
	res.ShardedDemuxPPS = measureThroughput(dm, pkts, cfg.Packets, cfg.Workers)
	res.DemuxSpeedupX = res.ShardedDemuxPPS / res.SeedDemuxPPS
	runtime.GC()

	// Arm 3: UDP saturation, seed vs sharded.
	if !cfg.SkipUDP {
		if err := runUDPArm(&cfg, pkts, res); err != nil {
			return nil, err
		}
	}

	// Arm 4: dump absorption.
	if err := runDumpArm(&cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the EXPERIMENTS.md rows.
func (r *IngestResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E15 ingest saturation (%d workers, %d records/datagram)\n", r.Workers, r.Records)
	fmt.Fprintf(&b, "  %-34s %12s %14s\n", "arm", "pkts/s", "records/s")
	row := func(name string, pps float64) {
		fmt.Fprintf(&b, "  %-34s %12.0f %14.0f\n", name, pps, pps*float64(r.Records))
	}
	row("seed path (alloc decode, 1 mutex)", r.SeedPPS)
	row("sharded zero-alloc pipeline", r.ShardedPPS)
	fmt.Fprintf(&b, "  %-34s %11.1fx\n", "single-PoP speedup", r.SpeedupX)
	row("seed fleet demux (full decode)", r.SeedDemuxPPS)
	row("sharded fleet demux (header peek)", r.ShardedDemuxPPS)
	fmt.Fprintf(&b, "  %-34s %11.1fx\n", "fleet demux speedup", r.DemuxSpeedupX)
	ladder := func(name string, pts []UDPPoint) {
		fmt.Fprintf(&b, "  UDP saturation, %s (0.5 Hz cycle + 8 Hz explain consumers):\n", name)
		fmt.Fprintf(&b, "    %10s %10s %10s %10s %10s\n", "offered", "sent", "decoded", "malformed", "dropped")
		for _, p := range pts {
			fmt.Fprintf(&b, "    %10d %10d %10d %10d %10d\n", p.OfferedPPS, p.Sent, p.Decoded, p.Malformed, p.Dropped)
		}
	}
	if len(r.SeedUDP) > 0 {
		ladder("seed serve loop", r.SeedUDP)
		ladder("sharded multi-reader", r.NewUDP)
		fmt.Fprintf(&b, "    max zero-drop offered rate: seed %d pps, sharded %d pps (%.1fx)\n",
			r.SeedMaxZeroDropPPS, r.MaxZeroDropPPS, r.UDPSustainX)
	}
	fmt.Fprintf(&b, "  BMP dump absorption (%d routes, paced %d routes/s, %d replayed during window):\n",
		r.DumpRoutes, r.DumpRate, r.ReplayedRoutes)
	fmt.Fprintf(&b, "    snapshot cycle p50/p95 idle: %s / %s\n",
		r.BaseP50.Round(time.Microsecond), r.BaseP95.Round(time.Microsecond))
	fmt.Fprintf(&b, "    snapshot cycle p50/p95 dump: %s / %s  (p95 inflation %.2fx)\n",
		r.DumpP50.Round(time.Microsecond), r.DumpP95.Round(time.Microsecond), r.InflationX)
	return b.String()
}
