package exp

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestE17MultipathSmoke is the check.sh-budgeted E17: both arms at
// reduced scale, asserting the multipath machinery engages end to end
// (weighted sets installed, dataplane carrying them) and the report
// renders. The RTT-improvement acceptance gate itself is judged at
// paper scale via `efbench -only E17`.
func TestE17MultipathSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Second)
	defer cancel()
	cfg := testConfig(false)
	// Roomy PNIs: perf splits need headroom on the measured alternates
	// (overload detours alone must not dominate the run).
	cfg.Synth.PNIHeadroomMin = 1.3
	cfg.Synth.PNIHeadroomMax = 1.6
	cfg.Perf.AnomalyProb = 0.15
	res, err := E17MultipathPerf(ctx, cfg, 12*30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityOnly.MultipathPrefixTicks != 0 {
		t.Errorf("capacity-only arm carried %d multipath prefix-ticks, want 0",
			res.CapacityOnly.MultipathPrefixTicks)
	}
	if res.Multipath.MultipathPrefixTicks == 0 {
		t.Error("multipath arm never installed a weighted member set")
	}
	if res.Multipath.MaxMembers < 2 {
		t.Errorf("largest member set %d-way, want >= 2", res.Multipath.MaxMembers)
	}
	if res.CapacityOnly.P90RTTms <= 0 || res.Multipath.P90RTTms <= 0 {
		t.Errorf("RTT quantiles missing: cap p90 %.2f, mp p90 %.2f",
			res.CapacityOnly.P90RTTms, res.Multipath.P90RTTms)
	}
	if res.Multipath.Cycles == 0 || res.CapacityOnly.Cycles == 0 {
		t.Error("an arm observed no controller cycles")
	}
	out := res.String()
	if !strings.Contains(out, "E17") || !strings.Contains(out, "capacity-only") {
		t.Errorf("String() malformed:\n%s", out)
	}
	t.Logf("\n%s", out)
}
