package exp

import (
	"context"
	"strings"
	"testing"
	"time"

	"edgefabric/internal/core"
	"edgefabric/internal/netsim"
	"edgefabric/internal/rib"
)

func newTestHarness(t *testing.T, cfg HarnessConfig) *Harness {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	h, err := NewHarness(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

func TestE1RouteDiversity(t *testing.T) {
	h := newTestHarness(t, testConfig(false))
	res := E1RouteDiversity(h)
	// Everything is reachable via 2 transits at least → ≥2 routes for
	// 100% of prefixes.
	if got := res.FracAtLeast[2]; got < 0.999 {
		t.Errorf("frac >=2 routes = %.3f, want ~1", got)
	}
	// Heavy prefixes belong to peered ASes, so the bulk of traffic has
	// a peer route beyond the two transits. (The strict weighted >
	// unweighted ordering of the paper emerges at realistic AS counts;
	// this 40-AS test scenario only checks the bulk property.)
	if res.WeightedAtLeast[3] < 0.7 {
		t.Errorf("weighted(>=3)=%.3f, want most traffic to have a peer route",
			res.WeightedAtLeast[3])
	}
	if res.MedianRoutes < 2 {
		t.Errorf("median routes = %.1f", res.MedianRoutes)
	}
	if !strings.Contains(res.String(), "E1") {
		t.Error("String() malformed")
	}
}

func TestE2ProjectedOverload(t *testing.T) {
	h := newTestHarness(t, testConfig(false))
	res := E2ProjectedOverload(h, time.Hour)
	// All PNIs are provisioned below peak AS demand: a tail of
	// interfaces must exceed 100% at peak hour.
	if res.FracOver100 == 0 {
		t.Errorf("no interface over 100%%: %+v", res.PeakUtil)
	}
	if res.DropTicksFrac == 0 {
		t.Error("no drop ticks in an underprovisioned scenario at peak")
	}
	if !strings.Contains(res.String(), "E2") {
		t.Error("String() malformed")
	}
}

func TestE3PolicyTiers(t *testing.T) {
	h := newTestHarness(t, testConfig(false))
	res := E3PolicyTiers(h)
	var sum float64
	for _, f := range res.Share {
		sum += f
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("shares sum to %.3f", sum)
	}
	// Peers (private+public+rs) carry the bulk under plain BGP; transit
	// only what nobody peers for.
	peerShare := res.Share[rib.ClassPrivate] + res.Share[rib.ClassPublic] + res.Share[rib.ClassRouteServer]
	if peerShare < res.Share[rib.ClassTransit] {
		t.Errorf("peer share %.2f < transit share %.2f", peerShare, res.Share[rib.ClassTransit])
	}
	if res.Share[rib.ClassPrivate] == 0 {
		t.Error("private share = 0")
	}
	if !strings.Contains(res.String(), "private") {
		t.Error("String() malformed")
	}
}

func TestE4E5DetourVolumeAndDurations(t *testing.T) {
	h := newTestHarness(t, testConfig(true))
	res := E4DetourVolume(h, 30*time.Minute)
	if len(res.FracSeries) == 0 {
		t.Fatal("no cycles recorded")
	}
	// Underprovisioned PNIs at peak: some detouring, but a minority of
	// total traffic (paper's shape: median single-digit %).
	if res.Max == 0 {
		t.Error("no traffic detoured at peak in a constrained scenario")
	}
	if res.Median > 0.5 {
		t.Errorf("median detour fraction = %.2f — should be a minority", res.Median)
	}
	if res.MeanOverrides == 0 {
		t.Error("no overrides on average")
	}

	// E5 durations over the same harness (clock is past peak now, so
	// detours may end as demand falls).
	res5 := E5DetourDurations(h, 30*time.Minute)
	_ = res5.String() // coverage: rendering must not panic
}

func TestE6OverloadAvoidance(t *testing.T) {
	base := testConfig(false)
	withEF := testConfig(true)
	hBase := newTestHarness(t, base)
	hEF := newTestHarness(t, withEF)
	res := &AvoidanceResult{
		Baseline: RunAvoidanceArm(hBase, 20*time.Minute),
		WithEF:   RunAvoidanceArm(hEF, 20*time.Minute),
	}
	if res.Baseline.DroppedFrac == 0 {
		t.Error("baseline should drop at peak")
	}
	if res.WithEF.DroppedFrac >= res.Baseline.DroppedFrac {
		t.Errorf("edge fabric dropped %.4f >= baseline %.4f",
			res.WithEF.DroppedFrac, res.Baseline.DroppedFrac)
	}
	if !strings.Contains(res.String(), "E6") {
		t.Error("String() malformed")
	}
}

func TestE7DetourLatency(t *testing.T) {
	h := newTestHarness(t, testConfig(true))
	res := E7DetourLatency(h, 20*time.Minute)
	if len(res.DeltasMS) == 0 {
		t.Fatal("no detoured prefix-ticks measured")
	}
	// Detours move traffic to less-preferred (typically transit) paths;
	// the median delta should be positive but bounded (tens of ms), and
	// a fraction of detours lands on faster paths.
	if res.P50 < -50 || res.P50 > 120 {
		t.Errorf("p50 delta = %.1f ms, implausible", res.P50)
	}
	if !strings.Contains(res.String(), "E7") {
		t.Error("String() malformed")
	}
}

func TestE8AltPathGaps(t *testing.T) {
	h := newTestHarness(t, testConfig(false))
	res, err := E8AltPathGaps(h, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefixes == 0 {
		t.Fatal("nothing measured")
	}
	// The anomaly model impairs ~6% of prefixes' preferred paths: the
	// ≥20ms fraction should be in the low percent range, and monotone
	// in the threshold.
	f20 := res.FracGainAtLeast[20]
	if f20 < 0.005 || f20 > 0.25 {
		t.Errorf("frac >=20ms = %.3f, want a small minority", f20)
	}
	if res.FracGainAtLeast[5] < f20 || f20 < res.FracGainAtLeast[100] {
		t.Errorf("gap CDF not monotone: %+v", res.FracGainAtLeast)
	}
	// Preferred path usually wins: median gap negative.
	if res.MedianGapV4MS > 0 {
		t.Errorf("median v4 gap = %.1f; preferred path should usually be fastest", res.MedianGapV4MS)
	}
	if !strings.Contains(res.String(), "E8") {
		t.Error("String() malformed")
	}
}

func TestE9FlashReaction(t *testing.T) {
	cfg := testConfig(true)
	// Give PNIs enough headroom that the scenario is calm off-flash.
	cfg.Synth.PNIHeadroomMin = 1.2
	cfg.Synth.PNIHeadroomMax = 1.4
	cfg.Start = time.Date(2017, 3, 1, 12, 0, 0, 0, time.UTC) // off-peak
	// Flash: the biggest private AS triples 5 minutes in.
	sc, err := netsim.Synthesize(cfg.Synth)
	if err != nil {
		t.Fatal(err)
	}
	var flashAS uint32
	var best float64
	for as, info := range sc.ASes {
		if info.Class == rib.ClassPrivate && info.Weight > best {
			best, flashAS = info.Weight, as
		}
	}
	flashStart := cfg.Start.Add(5 * time.Minute)
	cfg.Demand.Flash = []netsim.FlashEvent{{
		AS: flashAS, Start: flashStart, Duration: 30 * time.Minute, Multiplier: 3,
	}}
	h := newTestHarness(t, cfg)
	res := E9FlashReaction(h, flashStart, 25*time.Minute)
	if !res.OverloadAppeared {
		t.Skip("flash did not overload; scenario too roomy for this seed")
	}
	if res.Reaction < 0 {
		t.Fatal("flash overload never mitigated")
	}
	if res.Reaction > 5*time.Minute {
		t.Errorf("reaction = %s, want within a few cycles", res.Reaction)
	}
	if !strings.Contains(res.String(), "E9") {
		t.Error("String() malformed")
	}
}

func TestE10Ablation(t *testing.T) {
	base := testConfig(true)
	variants := DefaultAblationVariants()[:2] // keep the test quick
	var res AblationResult
	for _, v := range variants {
		row, err := RunAblation(base, v, 10*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		res.Rows = append(res.Rows, *row)
	}
	if len(res.Rows) != 2 {
		t.Fatal("missing rows")
	}
	// A 0.90 threshold must detour at least as much as 0.95.
	if res.Rows[0].DetourFrac < res.Rows[1].DetourFrac {
		t.Errorf("threshold 0.90 detours %.3f < 0.95's %.3f",
			res.Rows[0].DetourFrac, res.Rows[1].DetourFrac)
	}
	if !strings.Contains(res.String(), "E10") {
		t.Error("String() malformed")
	}
}

func TestPerfAwareHarness(t *testing.T) {
	cfg := testConfig(true)
	cfg.PerfAware = true
	// Roomy PNIs so overload overrides don't dominate; perf moves need
	// spare capacity on the faster alternates.
	cfg.Synth.PNIHeadroomMin = 1.3
	cfg.Synth.PNIHeadroomMax = 1.6
	cfg.Perf.AnomalyProb = 0.15
	h := newTestHarness(t, cfg)
	perfMoves := 0
	h.Run(10*30*time.Second, func(_ *netsim.TickStats, r *core.CycleReport) {
		if r == nil {
			return
		}
		for _, o := range r.Overrides {
			if strings.Contains(o.Reason, "alt path") {
				perfMoves++
			}
		}
	})
	if perfMoves == 0 {
		t.Error("perf-aware mode produced no performance overrides despite 15% anomalies")
	}
	if h.Measurer == nil {
		t.Error("measurer not attached")
	}
}
