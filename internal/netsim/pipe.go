package netsim

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// BufferedPipe returns the two ends of an in-memory, full-duplex,
// *buffered* connection. Unlike net.Pipe, writes never block: they
// append to the receiver's inbound buffer and return. That property
// matters in the simulator, where a router's session goroutine must be
// able to emit BMP or BGP messages before (or while) the other side is
// reading, without deadlocking.
//
// Both ends implement net.Conn, including read deadlines (the BGP hold
// timer depends on them). Write deadlines are accepted and ignored,
// since writes cannot block.
func BufferedPipe() (net.Conn, net.Conn) {
	a2b := newPipeBuffer()
	b2a := newPipeBuffer()
	a := &bufConn{name: "bufpipe-a", in: b2a, out: a2b}
	b := &bufConn{name: "bufpipe-b", in: a2b, out: b2a}
	return a, b
}

// pipeBuffer is one direction of a BufferedPipe.
type pipeBuffer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	data     []byte
	closed   bool
	deadline time.Time
	timer    *time.Timer
}

func newPipeBuffer() *pipeBuffer {
	b := &pipeBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *pipeBuffer) write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, io.ErrClosedPipe
	}
	b.data = append(b.data, p...)
	b.cond.Broadcast()
	return len(p), nil
}

func (b *pipeBuffer) read(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(b.data) > 0 {
			n := copy(p, b.data)
			b.data = b.data[n:]
			if len(b.data) == 0 {
				b.data = nil // release the backing array
			}
			return n, nil
		}
		if b.closed {
			return 0, io.EOF
		}
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			return 0, timeoutError{}
		}
		b.cond.Wait()
	}
}

func (b *pipeBuffer) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.cond.Broadcast()
}

func (b *pipeBuffer) setDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deadline = t
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		b.timer = time.AfterFunc(d, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.cond.Broadcast()
		})
	}
	b.cond.Broadcast()
}

// timeoutError satisfies net.Error with Timeout() true, which the BGP
// session layer maps to hold-timer expiry.
type timeoutError struct{}

func (timeoutError) Error() string { return os.ErrDeadlineExceeded.Error() }

// Timeout reports that this error is a deadline expiry.
func (timeoutError) Timeout() bool { return true }

// Temporary reports whether retrying may help; deadline expiries are
// not transient.
func (timeoutError) Temporary() bool { return false }

// Unwrap exposes os.ErrDeadlineExceeded for errors.Is.
func (timeoutError) Unwrap() error { return os.ErrDeadlineExceeded }

type bufConn struct {
	name string
	in   *pipeBuffer // what this end reads
	out  *pipeBuffer // what this end writes
}

// Read implements net.Conn.
func (c *bufConn) Read(p []byte) (int, error) { return c.in.read(p) }

// Write implements net.Conn.
func (c *bufConn) Write(p []byte) (int, error) { return c.out.write(p) }

// Close implements net.Conn: both directions stop; the peer's pending
// reads drain and then see EOF.
func (c *bufConn) Close() error {
	c.out.close()
	c.in.close()
	return nil
}

// LocalAddr implements net.Conn.
func (c *bufConn) LocalAddr() net.Addr { return pipeAddr(c.name) }

// RemoteAddr implements net.Conn.
func (c *bufConn) RemoteAddr() net.Addr { return pipeAddr(c.name) }

// SetDeadline implements net.Conn.
func (c *bufConn) SetDeadline(t time.Time) error {
	c.in.setDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *bufConn) SetReadDeadline(t time.Time) error {
	c.in.setDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn; writes never block, so it is a
// no-op.
func (c *bufConn) SetWriteDeadline(time.Time) error { return nil }

type pipeAddr string

// Network implements net.Addr.
func (pipeAddr) Network() string { return "bufpipe" }

// String implements net.Addr.
func (a pipeAddr) String() string { return string(a) }
