package netsim

import (
	"context"
	"net"
	"testing"
	"time"
)

func TestBridgeSplicesBothDirections(t *testing.T) {
	inner, farSide := BufferedPipe()
	br, err := NewBridge("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- br.Serve(ctx) }()

	remote, err := net.Dial("tcp", br.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	// remote -> inner
	if _, err := remote.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	farSide.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := ioReadFull(farSide, buf); err != nil {
		t.Fatalf("inner read: %v", err)
	}
	if string(buf) != "hello" {
		t.Errorf("inner got %q", buf)
	}
	// inner -> remote
	if _, err := farSide.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	remote.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := ioReadFull(remote, buf); err != nil {
		t.Fatalf("remote read: %v", err)
	}
	if string(buf) != "world" {
		t.Errorf("remote got %q", buf)
	}

	// Closing the remote ends Serve cleanly.
	remote.Close()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return after remote close")
	}
}

func ioReadFull(r interface{ Read([]byte) (int, error) }, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func TestBridgeSingleSession(t *testing.T) {
	inner, farSide := BufferedPipe()
	defer farSide.Close()
	br, err := NewBridge("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = br.Serve(ctx) }()

	first, err := net.Dial("tcp", br.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	// Second connection must be refused (listener closed after first).
	time.Sleep(50 * time.Millisecond)
	second, err := net.Dial("tcp", br.Addr().String())
	if err == nil {
		second.Close()
		t.Error("second connection should be refused")
	}
}

func TestBridgeContextCancel(t *testing.T) {
	inner, farSide := BufferedPipe()
	defer farSide.Close()
	br, err := NewBridge("127.0.0.1:0", inner)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- br.Serve(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve after cancel = %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Serve did not return on cancel")
	}
}

func TestBufferedPipeDeadline(t *testing.T) {
	a, b := BufferedPipe()
	defer a.Close()
	defer b.Close()
	a.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := a.Read(buf)
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Fatalf("read past deadline = %v, want timeout net.Error", err)
	}
	// Clearing the deadline re-arms reads.
	a.SetReadDeadline(time.Time{})
	go b.Write([]byte{42}) //nolint:errcheck
	if _, err := a.Read(buf); err != nil || buf[0] != 42 {
		t.Fatalf("read after clearing deadline: %v %v", buf, err)
	}
}

func TestBufferedPipeEOFAfterClose(t *testing.T) {
	a, b := BufferedPipe()
	if _, err := a.Write([]byte("xy")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	// Buffered data drains, then EOF.
	buf := make([]byte, 2)
	if _, err := ioReadFull(b, buf); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := b.Read(buf); err == nil {
		t.Error("expected EOF after drain")
	}
	// Writes to a closed pipe fail.
	if _, err := b.Write([]byte("z")); err == nil {
		t.Error("write to closed pipe should fail")
	}
	if a.LocalAddr().Network() != "bufpipe" || a.RemoteAddr().String() == "" {
		t.Error("addr methods broken")
	}
	if err := a.SetDeadline(time.Time{}); err != nil {
		t.Error(err)
	}
	if err := a.SetWriteDeadline(time.Now()); err != nil {
		t.Error(err)
	}
}
