package netsim

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"edgefabric/internal/bgp"
	"edgefabric/internal/bmp"
	"edgefabric/internal/rib"
	"edgefabric/internal/sflow"
)

// ControllerAddr is the iBGP address the Edge Fabric controller uses
// when injecting routes into the PoP's peering routers.
var ControllerAddr = netip.MustParseAddr("10.255.0.100")

// ControllerPathAddr returns the synthetic per-slot peer address a
// controller multipath member is stored under. The PoP table keys routes
// by (prefix, peer address), so each member of a weighted set needs a
// distinct address to coexist; slot 0 is ControllerAddr itself, higher
// slots derive from it (10.255.0.100+slot stays clear of the router
// loopbacks at 10.255.0.10+i for MaxMultipathSlots ≤ 16).
func ControllerPathAddr(slot int) netip.Addr {
	if slot <= 0 {
		return ControllerAddr
	}
	b := ControllerAddr.As4()
	b[3] += byte(slot)
	return netip.AddrFrom4(b)
}

// PoPConfig configures a live PoP.
type PoPConfig struct {
	// Scenario supplies topology and prefixes; required.
	Scenario *Scenario
	// Demand drives the dataplane; required.
	Demand *DemandModel
	// Clock is the simulation clock; required.
	Clock *Clock
	// Perf parameterizes path RTTs; zero value gets defaults.
	Perf PathPerfConfig
	// SFlowSink receives the routers' sFlow datagrams (usually the
	// controller's collector). Nil disables sampling.
	SFlowSink sflow.Sink
	// SamplingRate is the sFlow 1-in-N rate. Default 1024.
	SamplingRate uint32
	// HoldTime for the real BGP sessions (wall clock). Default 30 s.
	HoldTime time.Duration
	// Logf, when set, receives one-line log events.
	Logf func(format string, args ...any)
}

// PoP is a running emulated point of presence: real BGP speakers for the
// peering routers and every remote neighbor, BMP exporters per router,
// sFlow agents, a PoP-wide forwarding table, and the dataplane that
// moves synthetic demand through it all.
type PoP struct {
	cfg   PoPConfig
	Topo  *Topology
	Table *rib.Table
	Plane *Dataplane

	routers  map[string]*bgp.Speaker
	routerIP map[string]netip.Addr
	remotes  []*bgp.Speaker
	bmpConns map[string]net.Conn // controller side of each BMP stream
	agents   map[string]*sflow.Agent

	expMu     sync.RWMutex // guards exporters (faults swap them live)
	exporters map[string]*bmp.Exporter

	flt faultState // scripted fault bookkeeping (see faults.go)

	mu      sync.Mutex
	started bool
}

// NewPoP builds (but does not start) a PoP.
func NewPoP(cfg PoPConfig) (*PoP, error) {
	if cfg.Scenario == nil || cfg.Demand == nil || cfg.Clock == nil {
		return nil, fmt.Errorf("netsim: Scenario, Demand, and Clock are required")
	}
	if cfg.SamplingRate == 0 {
		cfg.SamplingRate = 1024
	}
	if cfg.HoldTime == 0 {
		cfg.HoldTime = 30 * time.Second
	}
	if cfg.Perf.Seed == 0 {
		cfg.Perf.Seed = cfg.Scenario.Config.Seed
	}
	topo := cfg.Scenario.Topo
	p := &PoP{
		cfg:       cfg,
		Topo:      topo,
		Table:     rib.NewTable(rib.DefaultPolicy()),
		routers:   make(map[string]*bgp.Speaker),
		routerIP:  make(map[string]netip.Addr),
		exporters: make(map[string]*bmp.Exporter),
		bmpConns:  make(map[string]net.Conn),
		agents:    make(map[string]*sflow.Agent),
	}
	// sFlow agents.
	if cfg.SFlowSink != nil {
		for i, r := range topo.Routers {
			p.agents[r.Name] = sflow.NewAgent(sflow.AgentConfig{
				Agent:        r.RouterID,
				SamplingRate: cfg.SamplingRate,
				Seed:         cfg.Scenario.Config.Seed + int64(i),
				Sink:         cfg.SFlowSink,
			})
		}
	}
	perf := NewPathPerf(cfg.Perf)
	p.Plane = NewDataplane(topo, p.Table, perf, cfg.Demand, p.agents)
	return p, nil
}

// Agents exposes the per-router sFlow agents (nil entries when sampling
// is disabled).
func (p *PoP) Agents() map[string]*sflow.Agent { return p.agents }

// BMPConn returns the controller-side connection of the named router's
// BMP stream. Valid after Start.
func (p *PoP) BMPConn(router string) net.Conn { return p.bmpConns[router] }

// prHandler accepts routes from one peering router's sessions into the
// PoP table and mirrors organic routes to the router's BMP exporter.
type prHandler struct {
	pop    *PoP
	router string
}

// HandleEstablished implements bgp.SessionHandler.
func (h *prHandler) HandleEstablished(peer *bgp.Peer, open *bgp.Open) {
	if peer.Addr() == ControllerAddr {
		return
	}
	if exp := h.pop.exporter(h.router); exp != nil {
		_ = exp.PeerUp(peer.Addr(), peer.AS(), open.RouterID, h.pop.routerIP[h.router])
	}
}

// HandleDown implements bgp.SessionHandler: withdraw everything learned
// from the dead session.
func (h *prHandler) HandleDown(peer *bgp.Peer, err error) {
	h.pop.Table.RemovePeer(peer.Addr())
	if peer.Addr() != ControllerAddr {
		if exp := h.pop.exporter(h.router); exp != nil {
			_ = exp.PeerDown(peer.Addr(), peer.AS(), 2)
		}
		return
	}
	// Controller session: multipath members live under synthetic per-slot
	// peer addresses — sweep those too.
	for slot := 1; slot < rib.MaxMultipathSlots; slot++ {
		h.pop.Table.RemovePeer(ControllerPathAddr(slot))
	}
}

// HandleUpdate implements bgp.SessionHandler: convert the UPDATE into
// table operations, resolving peer class and egress interface from the
// topology (or, for controller injections, from the announced next hop).
func (h *prHandler) HandleUpdate(peer *bgp.Peer, u *bgp.Update) {
	pop := h.pop
	fromController := peer.Addr() == ControllerAddr
	var spec *Peer
	if !fromController {
		spec = pop.Topo.PeerByAddr(peer.Addr())
		if spec == nil {
			return // session from an unknown neighbor: drop
		}
		if exp := pop.exporter(h.router); exp != nil {
			_ = exp.Route(peer.Addr(), peer.AS(), u)
		}
	}

	apply := func(prefix netip.Prefix, nextHop netip.Addr) {
		r := &rib.Route{
			Prefix:      prefix,
			NextHop:     nextHop,
			ASPath:      u.Attrs.FlatASPath(),
			PathHops:    u.Attrs.PathHopCount(),
			Origin:      rib.Origin(u.Attrs.Origin),
			MED:         u.Attrs.MED,
			HasMED:      u.Attrs.HasMED,
			Communities: u.Attrs.Communities,
			PeerAddr:    peer.Addr(),
			PeerAS:      peer.AS(),
		}
		if fromController {
			r.PeerClass = rib.ClassController
			r.FromIBGP = true
			r.LocalPref = u.Attrs.LocalPref
			// Resolve the next hop to the egress interface of the peer
			// whose path the override steers traffic onto.
			target := pop.Topo.PeerByAddr(nextHop)
			if target == nil {
				return // uninstallable override
			}
			r.EgressIF = target.InterfaceID
			// A weighted multipath member carries a slot community: store
			// it under the synthetic per-slot peer address so the k
			// members of the set coexist in the table. A plain override
			// (no slot community) replaces any lingering members.
			if slot, _, ok := rib.ParseMultipathCommunities(u.Attrs.Communities); ok {
				r.PeerAddr = ControllerPathAddr(slot)
			} else {
				for s := 1; s < rib.MaxMultipathSlots; s++ {
					pop.Table.Remove(prefix, ControllerPathAddr(s))
				}
			}
		} else {
			r.PeerClass = spec.Class
			r.EgressIF = spec.InterfaceID
		}
		pop.Table.Accept(r)
	}
	withdraw := func(prefix netip.Prefix) {
		pop.Table.Remove(prefix, peer.Addr())
		if fromController {
			// A controller withdraw is prefix-scoped on the wire; clear
			// every multipath member slot it may have installed.
			for s := 1; s < rib.MaxMultipathSlots; s++ {
				pop.Table.Remove(prefix, ControllerPathAddr(s))
			}
		}
	}

	for _, w := range u.Withdrawn {
		withdraw(w)
	}
	if u.Attrs.MPUnreach != nil {
		for _, w := range u.Attrs.MPUnreach.Withdrawn {
			withdraw(w)
		}
	}
	for _, n := range u.NLRI {
		apply(n, u.Attrs.NextHop)
	}
	if u.Attrs.MPReach != nil {
		for _, n := range u.Attrs.MPReach.NLRI {
			apply(n, u.Attrs.MPReach.NextHop)
		}
	}
}

// Start brings up the routers, the remote neighbors, their sessions, and
// the BMP streams. Sessions establish asynchronously; call WaitConverged
// to block until the table is full.
func (p *PoP) Start(ctx context.Context) error {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return fmt.Errorf("netsim: PoP already started")
	}
	p.started = true
	p.mu.Unlock()

	// Peering router speakers + BMP exporters.
	for i, r := range p.Topo.Routers {
		ip := netip.AddrFrom4([4]byte{10, 255, 0, byte(10 + i)})
		p.routerIP[r.Name] = ip
		sp, err := bgp.NewSpeaker(bgp.SpeakerConfig{
			LocalAS:  p.Topo.LocalAS,
			RouterID: r.RouterID,
			HoldTime: p.cfg.HoldTime,
			Handler:  &prHandler{pop: p, router: r.Name},
			Logf:     p.cfg.Logf,
		})
		if err != nil {
			return err
		}
		p.routers[r.Name] = sp

		prEnd, ctrlEnd := BufferedPipe()
		exp, err := bmp.NewExporter(prEnd, r.Name, p.cfg.Clock.Now)
		if err != nil {
			return err
		}
		p.exporters[r.Name] = exp
		p.bmpConns[r.Name] = ctrlEnd
	}

	// Remote neighbors: one speaker per Peer spec, wired by pipe to its
	// terminating router.
	for i := range p.Topo.Peers {
		spec := &p.Topo.Peers[i]
		pr := p.routers[spec.Router]
		prIP := p.routerIP[spec.Router]
		remote, err := bgp.NewSpeaker(bgp.SpeakerConfig{
			LocalAS:  spec.AS,
			RouterID: netip.AddrFrom4([4]byte{10, 254, byte(i >> 8), byte(i)}),
			HoldTime: p.cfg.HoldTime,
			Logf:     p.cfg.Logf,
		})
		if err != nil {
			return err
		}
		p.remotes = append(p.remotes, remote)

		prPeer, err := pr.AddPeer(bgp.PeerConfig{
			PeerAddr: spec.Addr,
			PeerAS:   spec.AS,
		})
		if err != nil {
			return err
		}
		announcer := &remoteAnnouncer{spec: spec}
		remotePeer, err := remote.AddPeer(bgp.PeerConfig{
			PeerAddr: prIP,
			PeerAS:   p.Topo.LocalAS,
			Handler:  announcer,
		})
		if err != nil {
			return err
		}
		a, b := BufferedPipe()
		if err := prPeer.Accept(a); err != nil {
			return err
		}
		if err := remotePeer.Accept(b); err != nil {
			return err
		}
	}
	go func() {
		<-ctx.Done()
		p.Close()
	}()
	return nil
}

// ExpectedRoutes returns the number of routes the table holds once every
// session has converged.
func (p *PoP) ExpectedRoutes() int {
	n := 0
	for i := range p.Topo.Peers {
		n += len(p.Topo.Peers[i].Announces)
	}
	return n
}

// WaitConverged blocks until the table holds every expected organic
// route or ctx expires.
func (p *PoP) WaitConverged(ctx context.Context) error {
	want := p.ExpectedRoutes()
	for {
		if p.Table.RouteCount() >= want {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("netsim: converged %d/%d routes: %w",
				p.Table.RouteCount(), want, ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// ConnectController creates an iBGP session between the controller and
// the named router, returning the controller-side connection. The
// controller's speaker must register a peer for the router's address
// (RouterIP) and Accept the returned conn.
func (p *PoP) ConnectController(router string) (net.Conn, error) {
	pr, ok := p.routers[router]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown router %q", router)
	}
	prPeer, err := pr.AddPeer(bgp.PeerConfig{
		PeerAddr: ControllerAddr,
		PeerAS:   p.Topo.LocalAS, // iBGP
	})
	if err != nil {
		return nil, err
	}
	prEnd, ctrlEnd := BufferedPipe()
	if err := prPeer.Accept(prEnd); err != nil {
		return nil, err
	}
	return ctrlEnd, nil
}

// RouterIP returns the loopback address of the named peering router, the
// address the controller dials its iBGP session toward.
func (p *PoP) RouterIP(router string) netip.Addr { return p.routerIP[router] }

// Routers lists router names.
func (p *PoP) Routers() []string {
	out := make([]string, 0, len(p.routers))
	for _, r := range p.Topo.Routers {
		out = append(out, r.Name)
	}
	return out
}

// PeerSessionDown administratively kills the PR-side session with the
// given neighbor, simulating a link or session failure. The PR withdraws
// everything learned from it.
func (p *PoP) PeerSessionDown(addr netip.Addr) error {
	spec := p.Topo.PeerByAddr(addr)
	if spec == nil {
		return fmt.Errorf("netsim: unknown peer %s", addr)
	}
	pr := p.routers[spec.Router]
	peer := pr.Peer(addr)
	if peer == nil {
		return fmt.Errorf("netsim: no session for %s", addr)
	}
	return peer.Notify(bgp.NotifCease, bgp.CeaseAdminShutdown)
}

// PeerSessionUp re-establishes a session previously taken down by
// PeerSessionDown: a fresh transport is handed to both sides, the
// session re-opens, and the remote re-announces its full set (the
// remoteAnnouncer fires on establish), ending a scheduled depeering.
func (p *PoP) PeerSessionUp(addr netip.Addr) error {
	spec := p.Topo.PeerByAddr(addr)
	if spec == nil {
		return fmt.Errorf("netsim: unknown peer %s", addr)
	}
	idx := -1
	for i := range p.Topo.Peers {
		if &p.Topo.Peers[i] == spec {
			idx = i
			break
		}
	}
	if idx < 0 || idx >= len(p.remotes) {
		return fmt.Errorf("netsim: no remote speaker for %s", addr)
	}
	prPeer := p.routers[spec.Router].Peer(spec.Addr)
	remotePeer := p.remotes[idx].Peer(p.routerIP[spec.Router])
	if prPeer == nil || remotePeer == nil {
		return fmt.Errorf("netsim: no session objects for %s", addr)
	}
	a, b := BufferedPipe()
	if err := prPeer.Accept(a); err != nil {
		return err
	}
	return remotePeer.Accept(b)
}

// Close shuts down all speakers and closes the BMP streams.
func (p *PoP) Close() {
	for _, sp := range p.remotes {
		sp.Close()
	}
	for _, sp := range p.routers {
		sp.Close()
	}
	p.expMu.RLock()
	for _, exp := range p.exporters {
		_ = exp.Close()
	}
	p.expMu.RUnlock()
	for _, c := range p.bmpConns {
		c.Close()
	}
	p.flt.mu.Lock()
	for _, c := range p.flt.bmpConn {
		if c != nil {
			c.Close()
		}
	}
	for _, c := range p.flt.injConn {
		if c != nil {
			c.Close()
		}
	}
	p.flt.mu.Unlock()
}

// remoteAnnouncer announces a neighbor's prefixes once its session with
// the peering router establishes.
type remoteAnnouncer struct {
	bgp.NopHandler
	spec *Peer
}

// HandleEstablished implements bgp.SessionHandler.
func (a *remoteAnnouncer) HandleEstablished(peer *bgp.Peer, _ *bgp.Open) {
	go func() {
		for _, u := range BuildAnnouncements(a.spec) {
			if err := peer.SendUpdate(u); err != nil {
				return
			}
		}
	}()
}

// BuildAnnouncements renders a neighbor's announcement list as BGP
// UPDATEs, batching prefixes that share an AS path and address family.
func BuildAnnouncements(spec *Peer) []*bgp.Update {
	type group struct {
		path []uint32
		med  uint32
		v4   []netip.Prefix
		v6   []netip.Prefix
	}
	groups := make(map[string]*group)
	var order []string
	for _, ann := range spec.Announces {
		key := fmt.Sprint(ann.Path, "/", ann.MED)
		g, ok := groups[key]
		if !ok {
			g = &group{path: ann.Path, med: ann.MED}
			groups[key] = g
			order = append(order, key)
		}
		if ann.Prefix.Addr().Is4() {
			g.v4 = append(g.v4, ann.Prefix)
		} else {
			g.v6 = append(g.v6, ann.Prefix)
		}
	}
	var updates []*bgp.Update
	const batch = 200
	for _, key := range order {
		g := groups[key]
		attrs := func() bgp.PathAttrs {
			a := bgp.PathAttrs{
				HasOrigin: true,
				ASPath:    bgp.Sequence(g.path...),
			}
			if g.med != 0 {
				a.MED, a.HasMED = g.med, true
			}
			return a
		}
		for i := 0; i < len(g.v4); i += batch {
			end := min(i+batch, len(g.v4))
			u := &bgp.Update{Attrs: attrs(), NLRI: g.v4[i:end]}
			u.Attrs.NextHop = spec.Addr
			updates = append(updates, u)
		}
		for i := 0; i < len(g.v6); i += batch {
			end := min(i+batch, len(g.v6))
			u := &bgp.Update{Attrs: attrs()}
			u.Attrs.MPReach = &bgp.MPReach{
				AFI:     bgp.AFIIPv6,
				SAFI:    bgp.SAFIUnicast,
				NextHop: v6NextHop(spec.Addr),
				NLRI:    g.v6[i:end],
			}
			updates = append(updates, u)
		}
	}
	return updates
}

// V6AliasFor exposes the derived IPv6 next-hop identity of a
// v4-addressed peer (see v6NextHop) so that controller inventories can
// register the same alias the simulator announces with.
func V6AliasFor(a netip.Addr) netip.Addr { return v6NextHop(a) }

// v6NextHop derives a v6 next hop identity for a peer addressed in v4:
// the PoP table keys sessions by peer address, so the mapped form keeps
// the association. Real deployments run distinct v4/v6 sessions; the
// simulation folds them into one.
func v6NextHop(a netip.Addr) netip.Addr {
	if a.Is6() && !a.Is4In6() {
		return a
	}
	b := a.As4()
	var v6 [16]byte
	copy(v6[:4], []byte{0x20, 0x01, 0x0d, 0xb8})
	v6[4], v6[5] = 0xff, 0xff
	copy(v6[12:], b[:])
	return netip.AddrFrom16(v6)
}
