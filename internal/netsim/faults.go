package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"

	"edgefabric/internal/bgp"
	"edgefabric/internal/bmp"
	"edgefabric/internal/sflow"
)

// This file is the PoP's fault-injection surface: scripted kill/restore
// of BMP streams, controller iBGP session resets, and sFlow datagram
// loss. Experiments (E11) drive it to prove the controller's fail-static
// behaviour; nothing here runs unless a harness calls it.

// faultState is the PoP's mutable fault bookkeeping, lazily initialized.
type faultState struct {
	mu        sync.Mutex
	bmpKilled map[string]bool
	bmpHanded map[string]bool     // initial Start-created conn handed to a dialer
	bmpConn   map[string]net.Conn // current controller-side BMP conn
	injKilled map[string]bool
	injPeer   map[string]*bgp.Peer // PR-side controller peer, one per router
	injConn   map[string]net.Conn  // current controller-side iBGP conn
}

func (f *faultState) ensure() {
	if f.bmpKilled == nil {
		f.bmpKilled = make(map[string]bool)
		f.bmpHanded = make(map[string]bool)
		f.bmpConn = make(map[string]net.Conn)
		f.injKilled = make(map[string]bool)
		f.injPeer = make(map[string]*bgp.Peer)
		f.injConn = make(map[string]net.Conn)
	}
}

// exporter returns the named router's current BMP exporter; prHandler
// mirrors events through this accessor so a fault-driven exporter swap
// (BMP redial) is safe against concurrent session goroutines.
func (p *PoP) exporter(router string) *bmp.Exporter {
	p.expMu.RLock()
	defer p.expMu.RUnlock()
	return p.exporters[router]
}

func (p *PoP) setExporter(router string, exp *bmp.Exporter) {
	p.expMu.Lock()
	p.exporters[router] = exp
	p.expMu.Unlock()
}

// BMPDialer returns a dial function for the named router's BMP endpoint,
// suitable for Controller.AddBMPFeedDialer. The first successful dial
// hands out the stream created at Start (which carries the initial
// convergence backlog); each later dial simulates the router accepting a
// fresh BMP session: a new exporter replaces the old one and replays
// Peer Up plus a full table dump for every live session, exactly like a
// real router's adj-RIB-in sync. Dials fail while KillBMP is in effect.
func (p *PoP) BMPDialer(router string) func(ctx context.Context) (net.Conn, error) {
	return func(ctx context.Context) (net.Conn, error) {
		if _, ok := p.routers[router]; !ok {
			return nil, fmt.Errorf("netsim: unknown router %q", router)
		}
		p.flt.mu.Lock()
		p.flt.ensure()
		if p.flt.bmpKilled[router] {
			p.flt.mu.Unlock()
			return nil, fmt.Errorf("netsim: bmp endpoint %s is down", router)
		}
		if !p.flt.bmpHanded[router] {
			p.flt.bmpHanded[router] = true
			conn := p.bmpConns[router]
			p.flt.bmpConn[router] = conn
			p.flt.mu.Unlock()
			return conn, nil
		}
		prEnd, ctrlEnd := BufferedPipe()
		exp, err := bmp.NewExporter(prEnd, router, p.cfg.Clock.Now)
		if err != nil {
			p.flt.mu.Unlock()
			return nil, err
		}
		p.flt.bmpConn[router] = ctrlEnd
		p.flt.mu.Unlock()
		p.setExporter(router, exp)
		go p.replayBMP(router, exp)
		return ctrlEnd, nil
	}
}

// replayBMP emits the Peer Up + route dump a freshly-accepted BMP
// session starts with, reconstructed from the topology for every
// currently-established session on the router. Live mirroring may
// interleave (the exporter is internally serialized); duplicate route
// upserts are idempotent on the collector side.
func (p *PoP) replayBMP(router string, exp *bmp.Exporter) {
	pr := p.routers[router]
	for i := range p.Topo.Peers {
		spec := &p.Topo.Peers[i]
		if spec.Router != router {
			continue
		}
		peer := pr.Peer(spec.Addr)
		if peer == nil || peer.State() != bgp.StateEstablished {
			continue
		}
		// Remote router IDs are assigned by peer index at Start.
		rid := netip.AddrFrom4([4]byte{10, 254, byte(i >> 8), byte(i)})
		if exp.PeerUp(spec.Addr, spec.AS, rid, p.routerIP[router]) != nil {
			return
		}
		for _, u := range BuildAnnouncements(spec) {
			if exp.Route(spec.Addr, spec.AS, u) != nil {
				return
			}
		}
	}
}

// KillBMP severs the named router's BMP stream and refuses redials until
// RestoreBMP. The controller's supervised feed sees the stream fail and
// backs off.
func (p *PoP) KillBMP(router string) {
	p.flt.mu.Lock()
	p.flt.ensure()
	p.flt.bmpKilled[router] = true
	conn := p.flt.bmpConn[router]
	if conn == nil {
		// Never dialed: the Start-created stream is the live one.
		conn = p.bmpConns[router]
		p.flt.bmpHanded[router] = true
	}
	p.flt.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// RestoreBMP lets the named router's BMP endpoint accept dials again.
func (p *PoP) RestoreBMP(router string) {
	p.flt.mu.Lock()
	p.flt.ensure()
	p.flt.bmpKilled[router] = false
	p.flt.mu.Unlock()
}

// ControllerDialer returns a dial function for the controller's iBGP
// session toward the named router, suitable for
// Controller.AddInjectionSessionDialer. Each dial has the router accept
// a fresh transport (the PR-side passive peer is registered on first
// use); dials fail while KillInjection is in effect.
func (p *PoP) ControllerDialer(router string) func(ctx context.Context) (net.Conn, error) {
	return func(ctx context.Context) (net.Conn, error) {
		pr, ok := p.routers[router]
		if !ok {
			return nil, fmt.Errorf("netsim: unknown router %q", router)
		}
		p.flt.mu.Lock()
		p.flt.ensure()
		if p.flt.injKilled[router] {
			p.flt.mu.Unlock()
			return nil, fmt.Errorf("netsim: injection endpoint %s is down", router)
		}
		prPeer := p.flt.injPeer[router]
		p.flt.mu.Unlock()
		if prPeer == nil {
			peer, err := pr.AddPeer(bgp.PeerConfig{
				PeerAddr: ControllerAddr,
				PeerAS:   p.Topo.LocalAS, // iBGP
			})
			if err != nil {
				// Raced with ConnectController or another dial for the
				// same router: reuse the registered peer.
				if peer = pr.Peer(ControllerAddr); peer == nil {
					return nil, err
				}
			}
			p.flt.mu.Lock()
			p.flt.injPeer[router] = peer
			p.flt.mu.Unlock()
			prPeer = peer
		}
		prEnd, ctrlEnd := BufferedPipe()
		if err := prPeer.Accept(prEnd); err != nil {
			return nil, err
		}
		p.flt.mu.Lock()
		p.flt.injConn[router] = ctrlEnd
		p.flt.mu.Unlock()
		return ctrlEnd, nil
	}
}

// KillInjection severs the controller's iBGP session toward the named
// router and refuses redials until RestoreInjection. The router drops
// every injected route (BGP withdraws on session loss).
func (p *PoP) KillInjection(router string) {
	p.flt.mu.Lock()
	p.flt.ensure()
	p.flt.injKilled[router] = true
	conn := p.flt.injConn[router]
	p.flt.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// RestoreInjection lets the controller's iBGP dials toward the named
// router succeed again.
func (p *PoP) RestoreInjection(router string) {
	p.flt.mu.Lock()
	p.flt.ensure()
	p.flt.injKilled[router] = false
	p.flt.mu.Unlock()
}

// ResetInjection flaps the controller's iBGP session toward the named
// router once: the transport dies but redials succeed immediately.
func (p *PoP) ResetInjection(router string) {
	p.flt.mu.Lock()
	p.flt.ensure()
	conn := p.flt.injConn[router]
	p.flt.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// LossySink wraps an sflow.Sink with scripted datagram loss: a loss
// probability for degraded collection and a kill switch for total feed
// failure. Safe for concurrent use by multiple agents.
type LossySink struct {
	inner sflow.Sink

	mu      sync.Mutex
	rng     *rand.Rand
	rate    float64
	killed  bool
	dropped uint64
}

// NewLossySink wraps inner with no loss; script faults with SetLossRate
// and Kill/Restore.
func NewLossySink(inner sflow.Sink, seed int64) *LossySink {
	return &LossySink{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SendDatagram implements sflow.Sink, dropping per the current fault
// script.
func (s *LossySink) SendDatagram(b []byte) error {
	s.mu.Lock()
	drop := s.killed || (s.rate > 0 && s.rng.Float64() < s.rate)
	if drop {
		s.dropped++
	}
	s.mu.Unlock()
	if drop {
		return nil
	}
	return s.inner.SendDatagram(b)
}

// SetLossRate sets the independent per-datagram drop probability.
func (s *LossySink) SetLossRate(p float64) {
	s.mu.Lock()
	s.rate = p
	s.mu.Unlock()
}

// Kill drops every datagram until Restore: the collector sees total
// silence, as if the collection path died.
func (s *LossySink) Kill() {
	s.mu.Lock()
	s.killed = true
	s.mu.Unlock()
}

// Restore ends a Kill (any SetLossRate remains in effect).
func (s *LossySink) Restore() {
	s.mu.Lock()
	s.killed = false
	s.mu.Unlock()
}

// Dropped reports how many datagrams the fault script has discarded.
func (s *LossySink) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
