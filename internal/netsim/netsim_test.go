package netsim

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"edgefabric/internal/rib"
)

func smallSynth(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Synthesize(SynthConfig{
		Seed:               7,
		Prefixes:           300,
		EdgeASes:           40,
		PrivatePeers:       4,
		PublicPeers:        8,
		RouteServerMembers: 10,
		Transits:           2,
		Routers:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := smallSynth(t)
	b := smallSynth(t)
	if len(a.Prefixes) != len(b.Prefixes) {
		t.Fatalf("prefix counts differ: %d vs %d", len(a.Prefixes), len(b.Prefixes))
	}
	for i := range a.Prefixes {
		if a.Prefixes[i].Prefix != b.Prefixes[i].Prefix ||
			a.Prefixes[i].Weight != b.Prefixes[i].Weight {
			t.Fatalf("prefix %d differs", i)
		}
	}
	if len(a.Topo.Peers) != len(b.Topo.Peers) {
		t.Fatal("peer counts differ")
	}
}

func TestSynthesizeStructure(t *testing.T) {
	sc := smallSynth(t)
	if got := len(sc.Prefixes); got != 300 {
		t.Errorf("prefixes = %d, want 300", got)
	}
	var nPriv, nPub, nRS, nTransit int
	for i := range sc.Topo.Peers {
		switch sc.Topo.Peers[i].Class {
		case rib.ClassPrivate:
			nPriv++
		case rib.ClassPublic:
			nPub++
		case rib.ClassRouteServer:
			nRS++
		case rib.ClassTransit:
			nTransit++
		}
	}
	if nPriv != 4 || nPub != 8 || nTransit != 2 {
		t.Errorf("peers = %d private, %d public, %d transit", nPriv, nPub, nTransit)
	}
	if nRS != 2 { // one route-server session per router
		t.Errorf("route servers = %d, want 2", nRS)
	}
	// Weights normalized.
	var sum float64
	for _, p := range sc.Prefixes {
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("weights sum to %f", sum)
	}
	// Private peers are the heaviest ASes.
	var privW, otherW float64
	for _, as := range sc.ASes {
		if as.Class == rib.ClassPrivate {
			privW += as.Weight
		} else {
			otherW += as.Weight
		}
	}
	if privW < otherW*0.5 {
		t.Errorf("private peers carry too little: %.3f vs %.3f", privW, otherW)
	}
	// Transits announce everything.
	for i := range sc.Topo.Peers {
		p := &sc.Topo.Peers[i]
		if p.Class == rib.ClassTransit && len(p.Announces) != len(sc.Prefixes) {
			t.Errorf("transit %s announces %d prefixes, want %d", p.Name, len(p.Announces), len(sc.Prefixes))
		}
	}
}

func TestSynthesizeV6Share(t *testing.T) {
	sc := smallSynth(t)
	v6 := 0
	for _, p := range sc.Prefixes {
		if p.Prefix.Addr().Is6() {
			v6++
		}
	}
	frac := float64(v6) / float64(len(sc.Prefixes))
	if frac < 0.1 || frac > 0.35 {
		t.Errorf("v6 fraction = %.2f, want ~0.2", frac)
	}
}

func TestTopologyValidateErrors(t *testing.T) {
	bad := []Topology{
		{Name: "no-as"},
		{Name: "no-router", LocalAS: 1},
		{Name: "dup-router", LocalAS: 1, Routers: []Router{
			{Name: "r", RouterID: netip.MustParseAddr("1.1.1.1")},
			{Name: "r", RouterID: netip.MustParseAddr("1.1.1.2")},
		}},
		{Name: "bad-if-router", LocalAS: 1,
			Routers:    []Router{{Name: "r", RouterID: netip.MustParseAddr("1.1.1.1")}},
			Interfaces: []Interface{{ID: 0, Router: "nope", CapacityBps: 1}}},
		{Name: "bad-capacity", LocalAS: 1,
			Routers:    []Router{{Name: "r", RouterID: netip.MustParseAddr("1.1.1.1")}},
			Interfaces: []Interface{{ID: 0, Router: "r", CapacityBps: 0}}},
		{Name: "bad-peer-if", LocalAS: 1,
			Routers: []Router{{Name: "r", RouterID: netip.MustParseAddr("1.1.1.1")}},
			Peers: []Peer{{Name: "p", AS: 2, Addr: netip.MustParseAddr("172.20.0.1"),
				InterfaceID: 9, Router: "r"}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("topology %q should fail validation", bad[i].Name)
		}
	}
}

func TestClock(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewClock(start)
	if !c.Now().Equal(start) {
		t.Error("Now != start")
	}
	c.Advance(30 * time.Second)
	if got := c.Now().Sub(start); got != 30*time.Second {
		t.Errorf("advanced %v", got)
	}
}

func TestDemandDiurnal(t *testing.T) {
	sc := smallSynth(t)
	m, err := sc.NewDemand(DemandConfig{PeakBps: 100e9, DiurnalAmplitude: 0.5, PeakHourUTC: 20})
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	peak := m.Diurnal(day.Add(20 * time.Hour))
	trough := m.Diurnal(day.Add(8 * time.Hour))
	if math.Abs(peak-1) > 1e-9 {
		t.Errorf("peak multiplier = %f", peak)
	}
	if math.Abs(trough-0.5) > 1e-9 {
		t.Errorf("trough multiplier = %f", trough)
	}
	// Total demand at peak ≈ PeakBps (noise has mean 1; tolerance wide).
	tot := m.Total(day.Add(20 * time.Hour))
	if tot < 80e9 || tot > 120e9 {
		t.Errorf("total at peak = %.2g", tot)
	}
}

func TestDemandFlash(t *testing.T) {
	sc := smallSynth(t)
	var target *PrefixInfo
	for _, p := range sc.Prefixes {
		target = p
		break
	}
	start := time.Date(2017, 3, 1, 10, 0, 0, 0, time.UTC)
	m, err := sc.NewDemand(DemandConfig{
		PeakBps:    100e9,
		NoiseSigma: -1, // sentinel ignored; set below
		Flash: []FlashEvent{{
			AS: target.OriginAS, Start: start, Duration: time.Hour, Multiplier: 5,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Rate(target, start.Add(-time.Minute))
	during := m.Rate(target, start.Add(time.Minute))
	after := m.Rate(target, start.Add(2*time.Hour))
	if during < before*3 {
		t.Errorf("flash rate %.3g not >> base %.3g", during, before)
	}
	if after > before*2 {
		t.Errorf("rate after flash %.3g vs before %.3g", after, before)
	}
}

func TestDemandNoiseDeterministic(t *testing.T) {
	sc := smallSynth(t)
	m, _ := sc.NewDemand(DemandConfig{})
	at := time.Date(2017, 3, 1, 12, 0, 0, 0, time.UTC)
	p := sc.Prefixes[0]
	if m.Rate(p, at) != m.Rate(p, at) {
		t.Error("Rate must be deterministic")
	}
}

func TestDemandRejectsBadWeights(t *testing.T) {
	_, err := NewDemandModel(DemandConfig{}, []*PrefixInfo{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Weight: 0.2},
	})
	if err == nil {
		t.Error("weights not summing to 1 should fail")
	}
	_, err = NewDemandModel(DemandConfig{}, nil)
	if err == nil {
		t.Error("empty prefixes should fail")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(100, 1.1)
	var sum float64
	for i, v := range w {
		sum += v
		if i > 0 && v > w[i-1] {
			t.Fatal("weights must be non-increasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %f", sum)
	}
	if w[0] < 10*w[99] {
		t.Error("distribution should be heavy-tailed")
	}
}

func TestPathPerfModel(t *testing.T) {
	pp := NewPathPerf(PathPerfConfig{Seed: 3})
	sc := smallSynth(t)
	priv := &sc.Topo.Peers[0]
	var transit *Peer
	for i := range sc.Topo.Peers {
		if sc.Topo.Peers[i].Class == rib.ClassTransit {
			transit = &sc.Topo.Peers[i]
			break
		}
	}
	if priv.Class != rib.ClassPrivate || transit == nil {
		t.Fatal("unexpected synth peer order")
	}
	// Determinism.
	p := sc.Prefixes[0].Prefix
	if pp.BaseRTT(p, priv, uint8(rib.ClassPrivate)) != pp.BaseRTT(p, priv, uint8(rib.ClassPrivate)) {
		t.Error("BaseRTT must be deterministic")
	}
	// On non-anomalous prefixes, private beats transit most of the time.
	var privWins, total int
	var anomalies int
	for _, pi := range sc.Prefixes {
		if pp.Anomalous(pi.Prefix) {
			anomalies++
			continue
		}
		total++
		if pp.BaseRTT(pi.Prefix, priv, uint8(rib.ClassPrivate)) <
			pp.BaseRTT(pi.Prefix, transit, uint8(rib.ClassPrivate)) {
			privWins++
		}
	}
	if float64(privWins)/float64(total) < 0.7 {
		t.Errorf("private wins only %d/%d of clean prefixes", privWins, total)
	}
	// Anomaly rate near the configured 6%.
	frac := float64(anomalies) / float64(len(sc.Prefixes))
	if frac < 0.01 || frac > 0.15 {
		t.Errorf("anomaly rate = %.3f", frac)
	}
	// On anomalous prefixes, transit beats the impaired private path.
	for _, pi := range sc.Prefixes {
		if !pp.Anomalous(pi.Prefix) {
			continue
		}
		privRTT := pp.BaseRTT(pi.Prefix, priv, uint8(rib.ClassPrivate))
		transitRTT := pp.BaseRTT(pi.Prefix, transit, uint8(rib.ClassPrivate))
		if transitRTT >= privRTT {
			t.Logf("anomalous %s: transit %.1f >= private %.1f (allowed occasionally)",
				pi.Prefix, transitRTT, privRTT)
		}
	}
}

func TestCongestionModel(t *testing.T) {
	if CongestionDelay(0.5) != 0 {
		t.Error("no delay below the knee")
	}
	if d := CongestionDelay(0.9); d <= 0 || d >= 50 {
		t.Errorf("delay at 0.9 = %f", d)
	}
	if CongestionDelay(1.2) != 50 {
		t.Error("delay capped at saturation")
	}
	if LossFraction(0.99) != 0 {
		t.Error("no loss below capacity")
	}
	if got := LossFraction(2); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("loss at 2x = %f", got)
	}
}

func TestBuildAnnouncementsBatching(t *testing.T) {
	spec := &Peer{
		Name: "t", AS: 65001, Addr: netip.MustParseAddr("172.20.0.1"),
		Class: rib.ClassTransit,
	}
	for i := 0; i < 450; i++ {
		p, _ := v4Prefix(i)
		spec.Announces = append(spec.Announces, Announcement{Prefix: p, Path: []uint32{65001, 65002}})
	}
	for i := 0; i < 10; i++ {
		p, _ := v6Prefix(i)
		spec.Announces = append(spec.Announces, Announcement{Prefix: p, Path: []uint32{65001, 65003}})
	}
	updates := BuildAnnouncements(spec)
	// 450 v4 at batch 200 → 3 updates; 10 v6 → 1 update.
	if len(updates) != 4 {
		t.Fatalf("updates = %d, want 4", len(updates))
	}
	nV4, nV6 := 0, 0
	for _, u := range updates {
		nV4 += len(u.NLRI)
		if u.Attrs.MPReach != nil {
			nV6 += len(u.Attrs.MPReach.NLRI)
			if !u.Attrs.MPReach.NextHop.Is6() {
				t.Error("v6 NLRI needs v6 next hop")
			}
		}
	}
	if nV4 != 450 || nV6 != 10 {
		t.Errorf("NLRI counts = %d/%d", nV4, nV6)
	}
}
