package netsim

import (
	"context"
	"net/netip"
	"testing"
	"time"

	"edgefabric/internal/rib"
	"edgefabric/internal/sflow"
)

// startPoP builds and converges a small live PoP.
func startPoP(t *testing.T, sink sflow.Sink) (*PoP, *Scenario, *Clock) {
	t.Helper()
	sc, err := Synthesize(SynthConfig{
		Seed:               11,
		Prefixes:           200,
		EdgeASes:           30,
		PrivatePeers:       3,
		PublicPeers:        6,
		RouteServerMembers: 8,
		Transits:           2,
		Routers:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	demand, err := sc.NewDemand(DemandConfig{PeakBps: 100e9})
	if err != nil {
		t.Fatal(err)
	}
	clock := NewClock(time.Date(2017, 3, 1, 20, 0, 0, 0, time.UTC))
	pop, err := NewPoP(PoPConfig{
		Scenario:  sc,
		Demand:    demand,
		Clock:     clock,
		SFlowSink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := pop.Start(ctx); err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithTimeout(ctx, 30*time.Second)
	defer wcancel()
	if err := pop.WaitConverged(wctx); err != nil {
		t.Fatal(err)
	}
	return pop, sc, clock
}

func TestPoPConvergesOverRealBGP(t *testing.T) {
	pop, sc, _ := startPoP(t, nil)
	if got, want := pop.Table.RouteCount(), pop.ExpectedRoutes(); got != want {
		t.Errorf("RouteCount = %d, want %d", got, want)
	}
	// Every prefix has a route, and every prefix is reachable via
	// transit at minimum.
	for _, pi := range sc.Prefixes {
		routes := pop.Table.Routes(pi.Prefix)
		if len(routes) == 0 {
			t.Fatalf("no routes for %s", pi.Prefix)
		}
		hasTransit := false
		for _, r := range routes {
			if r.PeerClass == rib.ClassTransit {
				hasTransit = true
			}
		}
		if !hasTransit {
			t.Errorf("%s lacks a transit route", pi.Prefix)
		}
		// Best route class must be the minimum class present.
		best := routes[0]
		for _, r := range routes[1:] {
			if r.PeerClass < best.PeerClass {
				t.Errorf("%s best is %v but %v available", pi.Prefix, best.PeerClass, r.PeerClass)
			}
		}
	}
	// Prefixes of private-peer ASes are preferred via the PNI.
	for _, as := range sc.ASes {
		if as.Class != rib.ClassPrivate {
			continue
		}
		for _, p := range as.Prefixes {
			best := pop.Table.Best(p)
			if best == nil || best.PeerClass != rib.ClassPrivate {
				t.Errorf("prefix %s of private AS%d routed via %v", p, as.AS, best)
			}
		}
	}
}

func TestPoPDataplaneTick(t *testing.T) {
	pop, sc, clock := startPoP(t, nil)
	stats := pop.Plane.Tick(clock.Now(), 30*time.Second)
	if stats.UnroutedBps != 0 {
		t.Errorf("unrouted demand = %g", stats.UnroutedBps)
	}
	total := stats.TotalDemandBps()
	if total < 50e9 || total > 150e9 {
		t.Errorf("total demand at peak = %.3g, want ~100G", total)
	}
	// Per-prefix stats populated with RTTs.
	n := 0
	for _, pt := range stats.Prefix {
		if pt.EgressIF >= 0 && pt.RTTms > 0 {
			n++
		}
	}
	if n < len(sc.Prefixes)*9/10 {
		t.Errorf("only %d/%d prefixes got RTTs", n, len(sc.Prefixes))
	}
}

func TestPoPSFlowPipeline(t *testing.T) {
	clockStart := time.Date(2017, 3, 1, 20, 0, 0, 0, time.UTC)
	var col *sflow.Collector
	var pop *PoP
	// The collector maps destinations through the PoP table; build it
	// lazily once the PoP exists.
	col = sflow.NewCollector(sflow.CollectorConfig{
		Mapper: sflow.PrefixMapperFunc(func(a netip.Addr) netip.Prefix {
			if pop == nil {
				return netip.Prefix{}
			}
			return pop.Table.LookupPrefix(a)
		}),
		Window: 2 * time.Minute,
		Now:    func() time.Time { return clockStart },
	})
	p, _, clock := startPoP(t, col)
	pop = p
	clockStart = clock.Now()
	var demandTotal float64
	for i := 0; i < 4; i++ {
		stats := pop.Plane.Tick(clock.Now(), 30*time.Second)
		demandTotal = stats.TotalDemandBps()
		clock.Advance(30 * time.Second)
		clockStart = clock.Now()
	}
	rates := col.Rates()
	if len(rates) == 0 {
		t.Fatal("collector saw no traffic")
	}
	var est float64
	for _, bps := range rates {
		est += bps
	}
	// The sFlow estimate should be within ~25% of true demand.
	if est < demandTotal*0.75 || est > demandTotal*1.25 {
		t.Errorf("sflow estimate %.3g vs demand %.3g", est, demandTotal)
	}
}

func TestPoPControllerInjection(t *testing.T) {
	pop, sc, clock := startPoP(t, nil)
	// Pick a prefix preferred via a private peer and a transit
	// alternate for it.
	var prefix netip.Prefix
	var alt *rib.Route
	for _, pi := range sc.Prefixes {
		routes := pop.Table.Routes(pi.Prefix)
		if len(routes) < 2 || routes[0].PeerClass != rib.ClassPrivate {
			continue
		}
		for _, r := range routes[1:] {
			if r.PeerClass == rib.ClassTransit {
				prefix, alt = pi.Prefix, r
				break
			}
		}
		if alt != nil {
			break
		}
	}
	if alt == nil {
		t.Fatal("no private-preferred prefix with transit alternate")
	}

	// Inject an override the way the controller does: iBGP session to
	// each PR announcing the prefix with controller-tier local-pref and
	// the alternate's next hop.
	import1 := &rib.Route{
		Prefix:    prefix,
		NextHop:   alt.NextHop,
		PeerAddr:  ControllerAddr,
		PeerAS:    pop.Topo.LocalAS,
		PeerClass: rib.ClassController,
		FromIBGP:  true,
		LocalPref: rib.PrefController,
		ASPath:    alt.ASPath,
		EgressIF:  alt.EgressIF,
	}
	pop.Table.Add(import1)

	best := pop.Table.Best(prefix)
	if best == nil || best.PeerClass != rib.ClassController {
		t.Fatalf("override not preferred: %v", best)
	}
	stats := pop.Plane.Tick(clock.Now(), 30*time.Second)
	pt := stats.Prefix[prefix]
	if !pt.Injected {
		t.Error("tick should mark the prefix as injected")
	}
	if pt.EgressIF != alt.EgressIF {
		t.Errorf("traffic egressed via IF %d, want %d", pt.EgressIF, alt.EgressIF)
	}
	if pt.Class != rib.ClassTransit {
		t.Errorf("underlying class = %v, want transit", pt.Class)
	}

	// Withdraw: behavior falls back to BGP's choice.
	pop.Table.Remove(prefix, ControllerAddr)
	stats = pop.Plane.Tick(clock.Now(), 30*time.Second)
	if stats.Prefix[prefix].Injected {
		t.Error("override still active after withdraw")
	}
}

func TestPoPPeerSessionDownWithdraws(t *testing.T) {
	pop, sc, _ := startPoP(t, nil)
	// Kill the first private peer's session.
	var victim *Peer
	for i := range pop.Topo.Peers {
		if pop.Topo.Peers[i].Class == rib.ClassPrivate {
			victim = &pop.Topo.Peers[i]
			break
		}
	}
	if victim == nil {
		t.Fatal("no private peer")
	}
	if err := pop.PeerSessionDown(victim.Addr); err != nil {
		t.Fatal(err)
	}
	// The PR withdraws the peer's routes; its AS's prefixes fail over
	// to another tier (transit at worst).
	deadline := time.Now().Add(5 * time.Second)
	as := sc.ASes[victim.AS]
	for {
		allFailedOver := true
		for _, p := range as.Prefixes {
			best := pop.Table.Best(p)
			if best == nil || best.PeerAddr == victim.Addr {
				allFailedOver = false
				break
			}
		}
		if allFailedOver {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("routes did not fail over after session down")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPoPConnectController(t *testing.T) {
	pop, _, _ := startPoP(t, nil)
	conn, err := pop.ConnectController("pr1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := pop.ConnectController("nope"); err == nil {
		t.Error("unknown router should error")
	}
}

// TestPoPMultipathForwarding installs a two-member weighted controller
// set the way the injector announces it (one route per slot, stored
// under synthetic per-slot peer addresses) and checks the dataplane
// splits the prefix's demand by the announced weights.
func TestPoPMultipathForwarding(t *testing.T) {
	pop, sc, clock := startPoP(t, nil)
	// A prefix preferred via a private peer with a transit alternate.
	var prefix netip.Prefix
	var primary, alt *rib.Route
	for _, pi := range sc.Prefixes {
		routes := pop.Table.Routes(pi.Prefix)
		if len(routes) < 2 || routes[0].PeerClass != rib.ClassPrivate {
			continue
		}
		for _, r := range routes[1:] {
			if r.PeerClass == rib.ClassTransit {
				prefix, primary, alt = pi.Prefix, routes[0], r
				break
			}
		}
		if alt != nil {
			break
		}
	}
	if alt == nil {
		t.Fatal("no private-preferred prefix with transit alternate")
	}

	member := func(slot, pct int, via *rib.Route) *rib.Route {
		return &rib.Route{
			Prefix:    prefix,
			NextHop:   via.NextHop,
			PeerAddr:  ControllerPathAddr(slot),
			PeerAS:    pop.Topo.LocalAS,
			PeerClass: rib.ClassController,
			FromIBGP:  true,
			LocalPref: rib.PrefController,
			ASPath:    via.ASPath,
			EgressIF:  via.EgressIF,
			Communities: []uint32{
				rib.Community(rib.ControllerCommunityAS, 1),
				rib.Community(rib.ControllerCommunityAS, 4),
				rib.MultipathSlotCommunity(slot),
				rib.MultipathWeightCommunity(pct),
			},
		}
	}
	pop.Table.Add(member(0, 70, primary))
	pop.Table.Add(member(1, 30, alt))

	stats := pop.Plane.Tick(clock.Now(), 30*time.Second)
	pt := stats.Prefix[prefix]
	if !pt.Injected {
		t.Fatal("multipath prefix not marked injected")
	}
	if len(pt.Members) != 2 {
		t.Fatalf("members = %d, want 2", len(pt.Members))
	}
	if pt.EgressIF != primary.EgressIF {
		t.Errorf("headline egress = IF%d, want slot-0's IF%d", pt.EgressIF, primary.EgressIF)
	}
	w0 := pt.Members[0].Bps / pt.DemandBps
	w1 := pt.Members[1].Bps / pt.DemandBps
	if w0 < 0.69 || w0 > 0.71 || w1 < 0.29 || w1 > 0.31 {
		t.Errorf("member shares = %.2f/%.2f, want 0.70/0.30", w0, w1)
	}
	if pt.Members[0].EgressIF != primary.EgressIF || pt.Members[1].EgressIF != alt.EgressIF {
		t.Errorf("member egress = IF%d/IF%d, want IF%d/IF%d",
			pt.Members[0].EgressIF, pt.Members[1].EgressIF, primary.EgressIF, alt.EgressIF)
	}
	if pt.RTTms <= 0 {
		t.Error("weighted RTT not computed")
	}

	// Withdrawing every slot falls back to the organic best.
	for s := 0; s < rib.MaxMultipathSlots; s++ {
		pop.Table.Remove(prefix, ControllerPathAddr(s))
	}
	stats = pop.Plane.Tick(clock.Now(), 30*time.Second)
	if stats.Prefix[prefix].Injected {
		t.Error("override still active after withdrawing all slots")
	}
}

// TestControllerPathAddrDistinct pins the slot address derivation: slot
// 0 is the controller's own iBGP address and every slot maps to a
// distinct address clear of the router loopbacks.
func TestControllerPathAddrDistinct(t *testing.T) {
	seen := map[netip.Addr]bool{}
	for s := 0; s < rib.MaxMultipathSlots; s++ {
		a := ControllerPathAddr(s)
		if seen[a] {
			t.Fatalf("slot %d address %s collides", s, a)
		}
		seen[a] = true
	}
	if ControllerPathAddr(0) != ControllerAddr {
		t.Error("slot 0 must be ControllerAddr")
	}
}
