package netsim

import (
	"math"
	"net/netip"
	"strings"
	"testing"
	"time"

	"edgefabric/internal/rib"
)

// eventTestScenario builds a small synthesized scenario plus a started
// PoP and demand model for engine tests.
func eventTestScenario(t *testing.T) (*Scenario, *PoP, *DemandModel, *Clock) {
	t.Helper()
	sc, err := Synthesize(SynthConfig{
		Seed:               7,
		Prefixes:           60,
		EdgeASes:           12,
		PrivatePeers:       3,
		PublicPeers:        4,
		RouteServerMembers: 4,
		Transits:           2,
		Routers:            2,
		PeakBps:            50e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	demand, err := sc.NewDemand(DemandConfig{NoiseSigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	clock := NewClock(timeAtHour(20))
	pop, err := NewPoP(PoPConfig{Scenario: sc, Demand: demand, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pop.Close)
	// The PoP closes when ctx ends, so the cancel must outlive this
	// helper — Cleanup, not defer.
	ctx, cancel := contextWithTimeout(t)
	t.Cleanup(cancel)
	if err := pop.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pop.WaitConverged(ctx); err != nil {
		t.Fatal(err)
	}
	return sc, pop, demand, clock
}

func TestEventEngineValidation(t *testing.T) {
	_, pop, demand, clock := eventTestScenario(t)
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"unknown kind", Event{Kind: "warp-core-breach", At: time.Minute}, "unknown kind"},
		{"negative offset", Event{Kind: EventLiveEvent, At: -time.Minute, Duration: time.Hour, Magnitude: 1.5}, "negative start"},
		{"unknown peer", Event{Kind: EventDepeer, At: time.Minute, Peer: "nope"}, `unknown peer "nope"`},
		{"unknown interface", Event{Kind: EventDrain, At: time.Minute, Duration: time.Minute, Interface: 999}, "unknown interface 999"},
		{"unknown router", Event{Kind: EventBMPKill, At: time.Minute, Duration: time.Minute, Router: "nope"}, `unknown router "nope"`},
		{"bad capacity scale", Event{Kind: EventBrownout, At: time.Minute, Duration: time.Minute, Interface: 0, Magnitude: 1.5}, "outside (0,1]"},
		{"flash needs AS", Event{Kind: EventFlashCrowd, At: time.Minute, Duration: time.Minute, Magnitude: 2}, "target AS required"},
		{"surge needs prefix", Event{Kind: EventSurge, At: time.Minute, Duration: time.Minute, Magnitude: 5}, "target prefix required"},
		{"surge needs duration", Event{Kind: EventSurge, At: time.Minute, Magnitude: 5, Prefix: netip.MustParsePrefix("10.0.0.0/24")}, "duration required"},
	}
	for _, tc := range cases {
		_, err := NewEventEngine(EventEngineConfig{
			Start:  clock.Now(),
			Events: []Event{tc.ev},
			PoP:    pop,
			Demand: demand,
		})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestEventEngineDemandApplyRevert(t *testing.T) {
	sc, pop, demand, clock := eventTestScenario(t)
	target := sc.Prefixes[0]
	base := demand.Rate(target, clock.Now().Add(time.Minute))

	eng, err := NewEventEngine(EventEngineConfig{
		Start: clock.Now(),
		Events: []Event{
			{Kind: EventSurge, At: 30 * time.Second, Duration: 2 * time.Minute,
				Magnitude: 10, Prefix: target.Prefix},
		},
		PoP:    pop,
		Demand: demand,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Before the event: nothing fires, rate unchanged.
	if fired := eng.Advance(clock.Now()); fired != 0 {
		t.Fatalf("fired %d transitions before start", fired)
	}
	// At the event: the rate is multiplied for the target only.
	clock.Advance(time.Minute)
	if fired := eng.Advance(clock.Now()); fired != 1 {
		t.Fatalf("apply fired %d transitions, want 1", fired)
	}
	if eng.Active() != 1 {
		t.Errorf("active = %d, want 1", eng.Active())
	}
	got := demand.Rate(target, clock.Now())
	if math.Abs(got/base-10) > 0.01 {
		t.Errorf("surged rate = %gx base, want 10x", got/base)
	}
	// A non-target prefix keeps its modifier-free rate.
	other := sc.Prefixes[1]
	otherBase := demand.Rate(other, clock.Now())
	demand.modMu.RLock()
	nmods := len(demand.mods)
	demand.modMu.RUnlock()
	if nmods != 1 {
		t.Fatalf("mods installed = %d, want 1", nmods)
	}
	if f := demand.modFactor(other, clock.Now()); math.Abs(f-1) > 1e-9 {
		t.Errorf("non-target prefix factor = %g (base rate %g), want 1", f, otherBase)
	}
	// Past the end: reverted, rate back to the un-modified model.
	clock.Advance(2 * time.Minute)
	if fired := eng.Advance(clock.Now()); fired != 1 {
		t.Fatalf("revert fired %d transitions, want 1", fired)
	}
	if !eng.Done() || eng.Active() != 0 {
		t.Errorf("done=%v active=%d after revert", eng.Done(), eng.Active())
	}
	demand.modMu.RLock()
	left := len(demand.mods)
	demand.modMu.RUnlock()
	if left != 0 {
		t.Errorf("%d modifiers still installed after revert", left)
	}
	if f := demand.modFactor(target, clock.Now()); math.Abs(f-1) > 1e-9 {
		t.Errorf("target factor after revert = %g, want 1", f)
	}
}

// TestEventEngineDemandShift: a demand-shift is a PoP-wide square
// pulse — every prefix scales by the magnitude at once (re-homed users
// land instantly, no ramp), and the pulse reverts cleanly. A loss-side
// shift (magnitude < 1) must also validate and apply; liveevent's
// ramp-shaped modifier must not leak into this kind.
func TestEventEngineDemandShift(t *testing.T) {
	sc, pop, demand, clock := eventTestScenario(t)

	for _, bad := range []struct {
		name string
		ev   Event
		want string
	}{
		{"needs duration", Event{Kind: EventDemandShift, At: time.Minute, Magnitude: 1.4}, "duration required"},
		{"needs magnitude", Event{Kind: EventDemandShift, At: time.Minute, Duration: time.Minute}, "magnitude must be positive"},
	} {
		_, err := NewEventEngine(EventEngineConfig{
			Start: clock.Now(), Events: []Event{bad.ev}, PoP: pop, Demand: demand,
		})
		if err == nil || !strings.Contains(err.Error(), bad.want) {
			t.Errorf("%s: err = %v, want containing %q", bad.name, err, bad.want)
		}
	}

	eng, err := NewEventEngine(EventEngineConfig{
		Start: clock.Now(),
		Events: []Event{
			{Kind: EventDemandShift, At: 30 * time.Second, Duration: 2 * time.Minute, Magnitude: 1.4},
		},
		PoP:    pop,
		Demand: demand,
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := []*PrefixInfo{sc.Prefixes[0], sc.Prefixes[len(sc.Prefixes)/2], sc.Prefixes[len(sc.Prefixes)-1]}

	clock.Advance(time.Minute)
	if fired := eng.Advance(clock.Now()); fired != 1 {
		t.Fatalf("apply fired %d transitions, want 1", fired)
	}
	// Square pulse: full magnitude immediately after onset, across the
	// whole PoP, not ramped like a live event.
	for _, p := range probe {
		if f := demand.modFactor(p, clock.Now()); math.Abs(f-1.4) > 1e-9 {
			t.Errorf("%s factor mid-shift = %g, want 1.4 (square, PoP-wide)", p.Prefix, f)
		}
	}

	clock.Advance(2 * time.Minute)
	if fired := eng.Advance(clock.Now()); fired != 1 {
		t.Fatalf("revert fired %d transitions, want 1", fired)
	}
	if !eng.Done() {
		t.Error("engine not done after the pulse")
	}
	for _, p := range probe {
		if f := demand.modFactor(p, clock.Now()); math.Abs(f-1) > 1e-9 {
			t.Errorf("%s factor after revert = %g, want 1", p.Prefix, f)
		}
	}

	// The losing side of a shift: magnitude < 1 drains the PoP.
	eng, err = NewEventEngine(EventEngineConfig{
		Start: clock.Now(),
		Events: []Event{
			{Kind: EventDemandShift, At: time.Minute, Duration: time.Minute, Magnitude: 0.4},
		},
		PoP:    pop,
		Demand: demand,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(90 * time.Second)
	if fired := eng.Advance(clock.Now()); fired != 1 {
		t.Fatalf("loss-side apply fired %d transitions, want 1", fired)
	}
	if f := demand.modFactor(probe[0], clock.Now()); math.Abs(f-0.4) > 1e-9 {
		t.Errorf("loss-side factor = %g, want 0.4", f)
	}
}

func TestDemandModRampShape(t *testing.T) {
	start := timeAtHour(12)
	mod := DemandMod{
		Start:      start,
		End:        start.Add(time.Hour),
		Multiplier: 3,
		Ramp:       true,
	}
	pi := &PrefixInfo{Prefix: netip.MustParsePrefix("10.0.0.0/24"), OriginAS: 1}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{-time.Minute, 1},          // before
		{0, 1},                     // ramp start
		{30 * time.Minute, 3},      // midpoint peak
		{15 * time.Minute, 2},      // halfway up
		{time.Hour, 1},             // end is exclusive
		{time.Hour + time.Hour, 1}, // after
	}
	for _, tc := range cases {
		got := mod.factor(pi, start.Add(tc.at))
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("factor at %s = %g, want %g", tc.at, got, tc.want)
		}
	}
}

func TestEventEngineCapacityOverlap(t *testing.T) {
	_, pop, demand, clock := eventTestScenario(t)
	ifc := pop.Topo.InterfaceByID(0)
	base := ifc.CapacityBps
	var mirrored []float64
	eng, err := NewEventEngine(EventEngineConfig{
		Start: clock.Now(),
		Events: []Event{
			{Kind: EventBrownout, At: time.Minute, Duration: 10 * time.Minute, Interface: 0, Magnitude: 0.5},
			{Kind: EventDrain, At: 2 * time.Minute, Duration: 4 * time.Minute, Interface: 0, Magnitude: 0.1},
		},
		PoP:        pop,
		Demand:     demand,
		OnCapacity: func(_ int, bps float64) { mirrored = append(mirrored, bps) },
	})
	if err != nil {
		t.Fatal(err)
	}
	step := func(d time.Duration, wantCap float64) {
		t.Helper()
		clock.Advance(d)
		eng.Advance(clock.Now())
		if got := pop.Topo.InterfaceByID(0).CapacityBps; math.Abs(got-wantCap) > 1 {
			t.Errorf("at +%s capacity = %g, want %g", d, got, wantCap)
		}
	}
	step(90*time.Second, base*0.5)  // brownout active
	step(time.Minute, base*0.5*0.1) // drain stacks multiplicatively
	step(4*time.Minute, base*0.5)   // drain ends first, brownout remains
	step(10*time.Minute, base)      // brownout ends: full capacity back
	if len(mirrored) != 4 {
		t.Errorf("OnCapacity fired %d times, want 4 (got %v)", len(mirrored), mirrored)
	}
	if !eng.Done() {
		t.Error("engine not done")
	}
}

func TestEventEngineDepeerRestore(t *testing.T) {
	sc, pop, demand, clock := eventTestScenario(t)
	// Pick a non-transit peer with announcements.
	var peer *Peer
	for i := range sc.Topo.Peers {
		if sc.Topo.Peers[i].Class != rib.ClassTransit && len(sc.Topo.Peers[i].Announces) > 0 {
			peer = &sc.Topo.Peers[i]
			break
		}
	}
	if peer == nil {
		t.Fatal("no non-transit peer")
	}
	full := pop.Table.RouteCount()
	eng, err := NewEventEngine(EventEngineConfig{
		Start: clock.Now(),
		Events: []Event{
			{Kind: EventDepeer, At: time.Minute, Duration: 5 * time.Minute, Peer: peer.Name},
		},
		PoP:    pop,
		Demand: demand,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	eng.Advance(clock.Now())
	// Session death and withdrawal propagate on the wall clock.
	deadline := time.Now().Add(5 * time.Second)
	for pop.Table.RouteCount() >= full && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := pop.Table.RouteCount(); got >= full {
		t.Fatalf("depeer withdrew nothing: %d routes, had %d", got, full)
	}
	clock.Advance(5 * time.Minute)
	eng.Advance(clock.Now())
	// Re-peer: session re-establishes and re-announces everything.
	deadline = time.Now().Add(10 * time.Second)
	for pop.Table.RouteCount() < full && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := pop.Table.RouteCount(); got < full {
		t.Fatalf("re-peer recovered %d routes, want %d", got, full)
	}
}

func TestEventStringAndTimeline(t *testing.T) {
	events := []Event{
		{Kind: EventDepeer, At: 10 * time.Minute, Duration: 5 * time.Minute, Peer: "as65010-pni"},
		{Kind: EventSurge, At: time.Minute, Duration: 2 * time.Minute, Magnitude: 10,
			Prefix: netip.MustParsePrefix("10.0.0.0/24")},
	}
	tl := FormatTimeline(events)
	// Sorted by start offset: the surge (1m) precedes the depeer (10m).
	if !strings.Contains(tl, "[00] ddos-surge") || !strings.Contains(tl, "[01] depeer") {
		t.Errorf("timeline not sorted:\n%s", tl)
	}
	if !strings.Contains(tl, "10.0.0.0/24") || !strings.Contains(tl, "as65010-pni") {
		t.Errorf("timeline missing targets:\n%s", tl)
	}
}

func TestEventEnginePathPerfApplyRevert(t *testing.T) {
	sc, pop, demand, clock := eventTestScenario(t)
	spec := &pop.Topo.Peers[0]
	prefix := sc.Prefixes[0].Prefix
	perf := pop.Plane.Perf()
	base := perf.BaseRTT(prefix, spec, 255)

	eng, err := NewEventEngine(EventEngineConfig{
		Start: clock.Now(),
		Events: []Event{
			{Kind: EventPathRTT, At: 30 * time.Second, Duration: 2 * time.Minute,
				Magnitude: 40, Peer: spec.Name},
			{Kind: EventLossyPath, At: 30 * time.Second, Duration: 2 * time.Minute,
				Magnitude: 0.08, Peer: spec.Name},
		},
		PoP:    pop,
		Demand: demand,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	if fired := eng.Advance(clock.Now()); fired != 2 {
		t.Fatalf("apply fired %d transitions, want 2", fired)
	}
	if got := perf.BaseRTT(prefix, spec, 255); math.Abs(got-(base+40)) > 0.01 {
		t.Errorf("inflated RTT = %.2f, want %.2f", got, base+40)
	}
	if got := perf.PathLoss(spec.Addr); got != 0.08 {
		t.Errorf("PathLoss = %v, want 0.08", got)
	}
	// The measurement-side LossSource sees the scripted loss too.
	r := &rib.Route{Prefix: prefix, PeerAddr: spec.Addr, NextHop: spec.Addr}
	if got := pop.Plane.LossForRoute(prefix, r); got != 0.08 {
		t.Errorf("LossForRoute = %v, want 0.08", got)
	}
	// Past the end: both impairments unwind.
	clock.Advance(3 * time.Minute)
	if fired := eng.Advance(clock.Now()); fired != 2 {
		t.Fatalf("revert fired %d transitions, want 2", fired)
	}
	if got := perf.BaseRTT(prefix, spec, 255); math.Abs(got-base) > 0.01 {
		t.Errorf("RTT after revert = %.2f, want %.2f", got, base)
	}
	if got := perf.PathLoss(spec.Addr); got != 0 {
		t.Errorf("PathLoss after revert = %v, want 0", got)
	}
	if !eng.Done() {
		t.Error("engine not done")
	}
}

func TestEventEnginePathPerfValidation(t *testing.T) {
	_, pop, demand, clock := eventTestScenario(t)
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"unknown peer", Event{Kind: EventPathRTT, At: time.Minute, Duration: time.Minute, Magnitude: 40, Peer: "nope"}, `unknown peer "nope"`},
		{"needs magnitude", Event{Kind: EventPathRTT, At: time.Minute, Duration: time.Minute, Peer: pop.Topo.Peers[0].Name}, "magnitude must be positive"},
		{"loss bound", Event{Kind: EventLossyPath, At: time.Minute, Duration: time.Minute, Magnitude: 1.5, Peer: pop.Topo.Peers[0].Name}, "outside (0,1]"},
		{"needs duration", Event{Kind: EventLossyPath, At: time.Minute, Magnitude: 0.1, Peer: pop.Topo.Peers[0].Name}, "duration required"},
	}
	for _, tc := range cases {
		_, err := NewEventEngine(EventEngineConfig{
			Start:  clock.Now(),
			Events: []Event{tc.ev},
			PoP:    pop,
			Demand: demand,
		})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
