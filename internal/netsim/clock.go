// Package netsim emulates the testbed the Edge Fabric paper runs on: a
// point of presence (PoP) with peering routers, egress interfaces toward
// private peers, a public IXP fabric, and transit providers; a fleet of
// remote ASes announcing user prefixes over real BGP sessions; a
// synthetic traffic demand model (heavy-tailed per-prefix volume with
// diurnal swing and flash crowds); and a dataplane that assigns demand
// to egress interfaces by longest-prefix-match, models congestion, and
// feeds the sFlow agents the controller measures traffic with.
package netsim

import (
	"sync"
	"time"
)

// Clock is a virtual clock the whole simulation shares so that days of
// traffic can be replayed in milliseconds. It satisfies the `func()
// time.Time` now-hooks exposed by the sflow and bmp packages.
type Clock struct {
	mu sync.RWMutex
	t  time.Time
}

// NewClock returns a clock starting at start.
func NewClock(start time.Time) *Clock {
	return &Clock{t: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
func (c *Clock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}
