package netsim

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"edgefabric/internal/rib"
)

const scenarioJSON = `{
  "name": "pop-test",
  "local_as": 64500,
  "routers": [
    {"name": "pr1", "router_id": "10.255.0.1"}
  ],
  "interfaces": [
    {"id": 0, "router": "pr1", "name": "pr1:pni", "capacity_gbps": 10},
    {"id": 1, "router": "pr1", "name": "pr1:transit", "capacity_gbps": 100}
  ],
  "peers": [
    {
      "name": "as65010-pni", "as": 65010, "addr": "172.20.0.1",
      "class": "private", "interface": 0, "router": "pr1", "base_rtt_ms": 9,
      "announces": [
        {"prefix": "198.51.100.0/24", "path": [65010], "weight": 3},
        {"prefix": "198.51.101.0/24", "path": [65010], "weight": 1}
      ]
    },
    {
      "name": "transit", "as": 64601, "addr": "172.20.0.9",
      "class": "transit", "interface": 1, "router": "pr1",
      "announces": [
        {"prefix": "198.51.100.0/24", "path": [64601, 65010]},
        {"prefix": "198.51.101.0/24", "path": [64601, 65010]},
        {"prefix": "203.0.113.0/24", "path": [64601, 65099], "weight": 4}
      ]
    }
  ]
}`

func TestScenarioFileBuild(t *testing.T) {
	f, err := ReadScenarioFile(strings.NewReader(scenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topo.Name != "pop-test" || sc.Topo.LocalAS != 64500 {
		t.Errorf("topo header = %+v", sc.Topo)
	}
	if len(sc.Prefixes) != 3 {
		t.Fatalf("prefixes = %d", len(sc.Prefixes))
	}
	var sum float64
	byPrefix := map[string]float64{}
	for _, pi := range sc.Prefixes {
		sum += pi.Weight
		byPrefix[pi.Prefix.String()] = pi.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %f", sum)
	}
	if math.Abs(byPrefix["198.51.100.0/24"]-3.0/8) > 1e-9 {
		t.Errorf("weight = %f, want 3/8", byPrefix["198.51.100.0/24"])
	}
	// AS metadata: 65010 is privately peered, 65099 transit-only.
	if sc.ASes[65010].Class != rib.ClassPrivate {
		t.Errorf("AS65010 class = %v", sc.ASes[65010].Class)
	}
	if sc.ASes[65099].Class != rib.ClassTransit {
		t.Errorf("AS65099 class = %v", sc.ASes[65099].Class)
	}
	// The scenario drives a demand model and a PoP.
	demand, err := sc.NewDemand(DemandConfig{PeakBps: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	if demand == nil {
		t.Fatal("no demand model")
	}
	if capBps := sc.Topo.InterfaceByID(0).CapacityBps; capBps != 10e9 {
		t.Errorf("capacity = %g", capBps)
	}
}

func TestScenarioFileErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"bad json", `{`},
		{"unknown field", `{"nope": 1}`},
		{"no weights", `{
			"name":"x","local_as":1,
			"routers":[{"name":"r","router_id":"1.1.1.1"}],
			"interfaces":[{"id":0,"router":"r","name":"i","capacity_gbps":1}],
			"peers":[{"name":"p","as":2,"addr":"172.20.0.1","class":"private","interface":0,"router":"r",
				"announces":[{"prefix":"10.0.0.0/24","path":[2]}]}]}`},
		{"dup weight", `{
			"name":"x","local_as":1,
			"routers":[{"name":"r","router_id":"1.1.1.1"}],
			"interfaces":[{"id":0,"router":"r","name":"i","capacity_gbps":1}],
			"peers":[{"name":"p","as":2,"addr":"172.20.0.1","class":"private","interface":0,"router":"r",
				"announces":[{"prefix":"10.0.0.0/24","path":[2],"weight":1},
				             {"prefix":"10.0.0.0/24","path":[2],"weight":1}]}]}`},
		{"bad class", `{
			"name":"x","local_as":1,
			"routers":[{"name":"r","router_id":"1.1.1.1"}],
			"interfaces":[{"id":0,"router":"r","name":"i","capacity_gbps":1}],
			"peers":[{"name":"p","as":2,"addr":"172.20.0.1","class":"wat","interface":0,"router":"r",
				"announces":[{"prefix":"10.0.0.0/24","path":[2],"weight":1}]}]}`},
		{"bad addr", `{
			"name":"x","local_as":1,
			"routers":[{"name":"r","router_id":"1.1.1.1"}],
			"interfaces":[{"id":0,"router":"r","name":"i","capacity_gbps":1}],
			"peers":[{"name":"p","as":2,"addr":"nope","class":"private","interface":0,"router":"r",
				"announces":[{"prefix":"10.0.0.0/24","path":[2],"weight":1}]}]}`},
	}
	for _, tc := range cases {
		f, err := ReadScenarioFile(strings.NewReader(tc.json))
		if err != nil {
			continue // decode-stage rejection is fine
		}
		if _, err := f.Build(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestScenarioFileRoundTripThroughPoP(t *testing.T) {
	f, err := ReadScenarioFile(strings.NewReader(scenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	demand, err := sc.NewDemand(DemandConfig{PeakBps: 12e9, NoiseSigma: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	clock := NewClock(timeAtHour(20))
	pop, err := NewPoP(PoPConfig{Scenario: sc, Demand: demand, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if err := pop.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pop.WaitConverged(ctx); err != nil {
		t.Fatal(err)
	}
	stats := pop.Plane.Tick(clock.Now(), 30*time.Second)
	if stats.UnroutedBps != 0 {
		t.Errorf("unrouted = %g", stats.UnroutedBps)
	}
}

// test helpers shared by the file-scenario tests.
func timeAtHour(h int) time.Time {
	return time.Date(2017, 3, 1, h, 0, 0, 0, time.UTC)
}

func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}
