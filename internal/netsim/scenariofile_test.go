package netsim

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"edgefabric/internal/rib"
)

const scenarioJSON = `{
  "name": "pop-test",
  "local_as": 64500,
  "routers": [
    {"name": "pr1", "router_id": "10.255.0.1"}
  ],
  "interfaces": [
    {"id": 0, "router": "pr1", "name": "pr1:pni", "capacity_gbps": 10},
    {"id": 1, "router": "pr1", "name": "pr1:transit", "capacity_gbps": 100}
  ],
  "peers": [
    {
      "name": "as65010-pni", "as": 65010, "addr": "172.20.0.1",
      "class": "private", "interface": 0, "router": "pr1", "base_rtt_ms": 9,
      "announces": [
        {"prefix": "198.51.100.0/24", "path": [65010], "weight": 3},
        {"prefix": "198.51.101.0/24", "path": [65010], "weight": 1}
      ]
    },
    {
      "name": "transit", "as": 64601, "addr": "172.20.0.9",
      "class": "transit", "interface": 1, "router": "pr1",
      "announces": [
        {"prefix": "198.51.100.0/24", "path": [64601, 65010]},
        {"prefix": "198.51.101.0/24", "path": [64601, 65010]},
        {"prefix": "203.0.113.0/24", "path": [64601, 65099], "weight": 4}
      ]
    }
  ]
}`

func TestScenarioFileBuild(t *testing.T) {
	f, err := ReadScenarioFile(strings.NewReader(scenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topo.Name != "pop-test" || sc.Topo.LocalAS != 64500 {
		t.Errorf("topo header = %+v", sc.Topo)
	}
	if len(sc.Prefixes) != 3 {
		t.Fatalf("prefixes = %d", len(sc.Prefixes))
	}
	var sum float64
	byPrefix := map[string]float64{}
	for _, pi := range sc.Prefixes {
		sum += pi.Weight
		byPrefix[pi.Prefix.String()] = pi.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %f", sum)
	}
	if math.Abs(byPrefix["198.51.100.0/24"]-3.0/8) > 1e-9 {
		t.Errorf("weight = %f, want 3/8", byPrefix["198.51.100.0/24"])
	}
	// AS metadata: 65010 is privately peered, 65099 transit-only.
	if sc.ASes[65010].Class != rib.ClassPrivate {
		t.Errorf("AS65010 class = %v", sc.ASes[65010].Class)
	}
	if sc.ASes[65099].Class != rib.ClassTransit {
		t.Errorf("AS65099 class = %v", sc.ASes[65099].Class)
	}
	// The scenario drives a demand model and a PoP.
	demand, err := sc.NewDemand(DemandConfig{PeakBps: 10e9})
	if err != nil {
		t.Fatal(err)
	}
	if demand == nil {
		t.Fatal("no demand model")
	}
	if capBps := sc.Topo.InterfaceByID(0).CapacityBps; capBps != 10e9 {
		t.Errorf("capacity = %g", capBps)
	}
}

func TestScenarioFileErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"bad json", `{`},
		{"unknown field", `{"nope": 1}`},
		{"no weights", `{
			"name":"x","local_as":1,
			"routers":[{"name":"r","router_id":"1.1.1.1"}],
			"interfaces":[{"id":0,"router":"r","name":"i","capacity_gbps":1}],
			"peers":[{"name":"p","as":2,"addr":"172.20.0.1","class":"private","interface":0,"router":"r",
				"announces":[{"prefix":"10.0.0.0/24","path":[2]}]}]}`},
		{"dup weight", `{
			"name":"x","local_as":1,
			"routers":[{"name":"r","router_id":"1.1.1.1"}],
			"interfaces":[{"id":0,"router":"r","name":"i","capacity_gbps":1}],
			"peers":[{"name":"p","as":2,"addr":"172.20.0.1","class":"private","interface":0,"router":"r",
				"announces":[{"prefix":"10.0.0.0/24","path":[2],"weight":1},
				             {"prefix":"10.0.0.0/24","path":[2],"weight":1}]}]}`},
		{"bad class", `{
			"name":"x","local_as":1,
			"routers":[{"name":"r","router_id":"1.1.1.1"}],
			"interfaces":[{"id":0,"router":"r","name":"i","capacity_gbps":1}],
			"peers":[{"name":"p","as":2,"addr":"172.20.0.1","class":"wat","interface":0,"router":"r",
				"announces":[{"prefix":"10.0.0.0/24","path":[2],"weight":1}]}]}`},
		{"bad addr", `{
			"name":"x","local_as":1,
			"routers":[{"name":"r","router_id":"1.1.1.1"}],
			"interfaces":[{"id":0,"router":"r","name":"i","capacity_gbps":1}],
			"peers":[{"name":"p","as":2,"addr":"nope","class":"private","interface":0,"router":"r",
				"announces":[{"prefix":"10.0.0.0/24","path":[2],"weight":1}]}]}`},
	}
	for _, tc := range cases {
		f, err := ReadScenarioFile(strings.NewReader(tc.json))
		if err != nil {
			continue // decode-stage rejection is fine
		}
		if _, err := f.Build(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// eventsJSON appends a composed event timeline to the base scenario.
var eventsJSON = strings.Replace(scenarioJSON, `  ]
}`, `  ],
  "events": [
    {"kind": "flash-crowd", "at": "10m", "duration": "20m", "magnitude": 3, "as": 65010},
    {"kind": "ddos-surge", "at": "90s", "duration": "5m", "magnitude": 8, "prefix": "203.0.113.1/24"},
    {"kind": "depeer", "at": "30m", "duration": "10m", "peer": "as65010-pni"},
    {"kind": "drain", "at": "45m", "duration": "15m", "interface": 0},
    {"kind": "ibgp-reset", "at": "1h", "router": "pr1"}
  ]
}`, 1)

func TestScenarioFileEvents(t *testing.T) {
	f, err := ReadScenarioFile(strings.NewReader(eventsJSON))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Events) != 5 {
		t.Fatalf("events = %d, want 5", len(sc.Events))
	}
	surge := sc.Events[1]
	if surge.Kind != EventSurge || surge.At != 90*time.Second || surge.Duration != 5*time.Minute {
		t.Errorf("surge parsed as %+v", surge)
	}
	// Host bits in the file's prefix are masked away.
	if want := "203.0.113.0/24"; surge.Prefix.String() != want {
		t.Errorf("surge prefix = %s, want %s (masked)", surge.Prefix, want)
	}
	if sc.Events[0].AS != 65010 || sc.Events[2].Peer != "as65010-pni" || sc.Events[4].Router != "pr1" {
		t.Errorf("targets lost in parse: %+v", sc.Events)
	}

	// Malformed durations and prefixes fail with the event index and kind.
	bad := []struct{ name, field, val, want string }{
		{"bad at", `"at": "10m"`, `"at": "soon"`, `event 0 (flash-crowd): bad at`},
		{"bad duration", `"duration": "20m"`, `"duration": "wat"`, `event 0 (flash-crowd): bad duration`},
		{"bad prefix", `"prefix": "203.0.113.1/24"`, `"prefix": "nope"`, `event 1 (ddos-surge): bad prefix`},
	}
	for _, tc := range bad {
		f, err := ReadScenarioFile(strings.NewReader(strings.Replace(eventsJSON, tc.field, tc.val, 1)))
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if _, err := f.Build(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestScenarioFileNamedCrossRefErrors(t *testing.T) {
	cases := []struct {
		name     string
		old, to  string
		sentinel error
		contains string
	}{
		{"peer unknown router", `"interface": 0, "router": "pr1", "base_rtt_ms": 9`,
			`"interface": 0, "router": "pr9", "base_rtt_ms": 9`,
			ErrUnknownRouter, `peer "as65010-pni"`},
		{"peer unknown interface", `"interface": 0, "router": "pr1", "base_rtt_ms": 9`,
			`"interface": 7, "router": "pr1", "base_rtt_ms": 9`,
			ErrUnknownInterface, `peer "as65010-pni"`},
		{"interface unknown router", `{"id": 0, "router": "pr1", "name": "pr1:pni", "capacity_gbps": 10}`,
			`{"id": 0, "router": "pr9", "name": "pr1:pni", "capacity_gbps": 10}`,
			ErrUnknownRouter, `interface "pr1:pni" (id 0)`},
	}
	for _, tc := range cases {
		f, err := ReadScenarioFile(strings.NewReader(strings.Replace(scenarioJSON, tc.old, tc.to, 1)))
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		_, err = f.Build()
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
			continue
		}
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: errors.Is(%v, %v) = false", tc.name, err, tc.sentinel)
		}
		if !strings.Contains(err.Error(), tc.contains) {
			t.Errorf("%s: err %q does not name the entity %q", tc.name, err, tc.contains)
		}
	}
}

// discardSink is an sFlow sink that accepts and drops everything.
type discardSink struct{}

func (discardSink) SendDatagram([]byte) error { return nil }

// TestExampleScenariosBuild keeps every shipped example topology
// loadable: each must build, and any embedded event timeline must pass
// the engine's target validation against its own topology.
func TestExampleScenariosBuild(t *testing.T) {
	files, err := filepath.Glob("../../examples/topologies/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example topologies found")
	}
	for _, path := range files {
		sc, err := LoadScenarioFile(path)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if len(sc.Events) == 0 {
			continue
		}
		demand, err := sc.NewDemand(DemandConfig{PeakBps: 10e9})
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		clock := NewClock(timeAtHour(20))
		pop, err := NewPoP(PoPConfig{Scenario: sc, Demand: demand, Clock: clock})
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		_, err = NewEventEngine(EventEngineConfig{
			Start:  clock.Now(),
			Events: sc.Events,
			PoP:    pop,
			Demand: demand,
			Loss:   NewLossySink(discardSink{}, 1),
		})
		pop.Close()
		if err != nil {
			t.Errorf("%s: event timeline invalid: %v", filepath.Base(path), err)
		}
	}
}

func TestScenarioFileRoundTripThroughPoP(t *testing.T) {
	f, err := ReadScenarioFile(strings.NewReader(scenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	demand, err := sc.NewDemand(DemandConfig{PeakBps: 12e9, NoiseSigma: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	clock := NewClock(timeAtHour(20))
	pop, err := NewPoP(PoPConfig{Scenario: sc, Demand: demand, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer pop.Close()
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if err := pop.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pop.WaitConverged(ctx); err != nil {
		t.Fatal(err)
	}
	stats := pop.Plane.Tick(clock.Now(), 30*time.Second)
	if stats.UnroutedBps != 0 {
		t.Errorf("unrouted = %g", stats.UnroutedBps)
	}
}

// test helpers shared by the file-scenario tests.
func timeAtHour(h int) time.Time {
	return time.Date(2017, 3, 1, h, 0, 0, 0, time.UTC)
}

func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 30*time.Second)
}
