package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"edgefabric/internal/rib"
)

// ChaosConfig parameterizes the chaos scheduler: a seeded generator of
// composed event timelines over a scenario. Every draw comes from one
// rand.Rand seeded with Seed, so a timeline is fully determined by
// (scenario, config) and any soak failure replays exactly.
type ChaosConfig struct {
	// Seed drives all randomness. Required (zero is a valid seed but a
	// suspicious one; the soak harness always passes its run seed).
	Seed int64
	// Horizon is the window events must complete within. Default 4h.
	Horizon time.Duration
	// Events is how many events to compose. Default 12.
	Events int
	// Quiet is the leading quiet period before the first event, giving
	// the controller time to converge and establish a steady baseline.
	// Default 5m.
	Quiet time.Duration
}

func (c *ChaosConfig) setDefaults() {
	if c.Horizon == 0 {
		c.Horizon = 4 * time.Hour
	}
	if c.Events == 0 {
		c.Events = 12
	}
	if c.Quiet == 0 {
		c.Quiet = 5 * time.Minute
	}
}

// chaosTargets is the pre-extracted target universe the scheduler draws
// from.
type chaosTargets struct {
	peeredAS []*EdgeAS     // non-transit-only ASes, for flash crowds
	heavy    []*PrefixInfo // heaviest prefixes, for surges
	peers    []*Peer       // non-transit peers, for depeering
	allPeers []*Peer       // every peer incl. transit, for path-perf events
	peerIfs  []int         // non-transit interface IDs, for drain/brownout
	routers  []string
}

// ChaosSchedule composes a seeded random event timeline over the
// scenario: demand distortions on real heavy-hitters, depeerings and
// capacity events on non-transit attachments (transit is the paper's
// escape valve — chaos must not close it), and telemetry faults. Events
// overlap freely; every event ends within cfg.Horizon.
func ChaosSchedule(sc *Scenario, cfg ChaosConfig) ([]Event, error) {
	cfg.setDefaults()
	t, err := chaosUniverse(sc)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dur := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
	mag := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	// Family weights: demand distortions dominate (they are the paper's
	// daily reality), structural and telemetry faults season the mix.
	kinds := []struct {
		kind   EventKind
		weight int
	}{
		{EventFlashCrowd, 5},
		{EventSurge, 4},
		{EventLiveEvent, 2},
		{EventDemandShift, 2},
		{EventDepeer, 3},
		{EventDrain, 2},
		{EventBrownout, 3},
		{EventBMPKill, 2},
		{EventIBGPReset, 2},
		{EventSFlowLoss, 3},
		{EventPathRTT, 3},
		{EventLossyPath, 3},
	}
	totalW := 0
	for _, k := range kinds {
		totalW += k.weight
	}

	var events []Event
	for len(events) < cfg.Events {
		pick := rng.Intn(totalW)
		var kind EventKind
		for _, k := range kinds {
			if pick < k.weight {
				kind = k.kind
				break
			}
			pick -= k.weight
		}
		ev := Event{Kind: kind}
		switch kind {
		case EventFlashCrowd:
			as := weightedAS(rng, t.peeredAS)
			ev.AS = as.AS
			ev.Duration = dur(10*time.Minute, 40*time.Minute)
			ev.Magnitude = mag(1.5, 4)
		case EventSurge:
			ev.Prefix = t.heavy[rng.Intn(len(t.heavy))].Prefix
			ev.Duration = dur(2*time.Minute, 10*time.Minute)
			ev.Magnitude = mag(5, 25)
		case EventLiveEvent:
			ev.Duration = dur(30*time.Minute, 2*time.Hour)
			ev.Magnitude = mag(1.2, 1.8)
		case EventDemandShift:
			// Cross-PoP shift as this PoP sees it: half the draws drain
			// demand away (region loss), half dump a neighbor's users
			// here (anycast re-homing).
			ev.Duration = dur(10*time.Minute, 45*time.Minute)
			if rng.Float64() < 0.5 {
				ev.Magnitude = mag(0.4, 0.85)
			} else {
				ev.Magnitude = mag(1.2, 1.7)
			}
		case EventDepeer:
			ev.Peer = t.peers[rng.Intn(len(t.peers))].Name
			ev.Duration = dur(5*time.Minute, 30*time.Minute)
		case EventDrain:
			ev.Interface = t.peerIfs[rng.Intn(len(t.peerIfs))]
			ev.Duration = dur(10*time.Minute, 30*time.Minute)
			ev.Magnitude = 0.05
		case EventBrownout:
			ev.Interface = t.peerIfs[rng.Intn(len(t.peerIfs))]
			ev.Duration = dur(10*time.Minute, 30*time.Minute)
			ev.Magnitude = mag(0.3, 0.7)
		case EventBMPKill:
			ev.Router = t.routers[rng.Intn(len(t.routers))]
			ev.Duration = dur(60*time.Second, 180*time.Second)
		case EventIBGPReset:
			ev.Router = t.routers[rng.Intn(len(t.routers))]
		case EventPathRTT:
			// Impair a preferred (non-transit) attachment so the
			// optimizer has a reason to detour or split away from it.
			ev.Peer = t.peers[rng.Intn(len(t.peers))].Name
			ev.Duration = dur(10*time.Minute, 30*time.Minute)
			ev.Magnitude = mag(20, 80)
		case EventLossyPath:
			// Any attachment, transit included: a lossy alternate must
			// not attract weighted demand just because it has headroom.
			ev.Peer = t.allPeers[rng.Intn(len(t.allPeers))].Name
			ev.Duration = dur(10*time.Minute, 30*time.Minute)
			ev.Magnitude = mag(0.02, 0.2)
		case EventSFlowLoss:
			if rng.Float64() < 0.25 {
				// Deep blackout: long enough that the health ladder
				// walks through fail-static (and sometimes fail-back).
				ev.Magnitude = 1
				ev.Duration = dur(6*time.Minute, 8*time.Minute)
			} else {
				ev.Magnitude = mag(0.5, 1.0)
				ev.Duration = dur(1*time.Minute, 4*time.Minute)
			}
		}
		// Place the event: start after the quiet lead, end within the
		// horizon.
		span := cfg.Horizon - cfg.Quiet - ev.Duration
		if span <= 0 {
			continue // event family too long for this horizon; redraw
		}
		ev.At = cfg.Quiet + time.Duration(rng.Int63n(int64(span)))
		events = append(events, ev)
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	return events, nil
}

// chaosUniverse extracts the target sets chaos events draw from.
func chaosUniverse(sc *Scenario) (*chaosTargets, error) {
	t := &chaosTargets{}
	for _, as := range sc.ASes {
		if as.Class != rib.ClassTransit && as.Weight > 0 {
			t.peeredAS = append(t.peeredAS, as)
		}
	}
	// Deterministic iteration order for the weighted draw.
	sort.Slice(t.peeredAS, func(a, b int) bool { return t.peeredAS[a].AS < t.peeredAS[b].AS })

	heavy := append([]*PrefixInfo(nil), sc.Prefixes...)
	sort.SliceStable(heavy, func(a, b int) bool { return heavy[a].Weight > heavy[b].Weight })
	if len(heavy) > 32 {
		heavy = heavy[:32]
	}
	t.heavy = heavy

	seenIf := make(map[int]bool)
	for i := range sc.Topo.Peers {
		p := &sc.Topo.Peers[i]
		t.allPeers = append(t.allPeers, p)
		if p.Class == rib.ClassTransit {
			continue
		}
		t.peers = append(t.peers, p)
		if !seenIf[p.InterfaceID] {
			seenIf[p.InterfaceID] = true
			t.peerIfs = append(t.peerIfs, p.InterfaceID)
		}
	}
	for _, r := range sc.Topo.Routers {
		t.routers = append(t.routers, r.Name)
	}
	if len(t.peeredAS) == 0 || len(t.heavy) == 0 || len(t.peers) == 0 ||
		len(t.peerIfs) == 0 || len(t.routers) == 0 {
		return nil, fmt.Errorf("netsim: scenario too sparse for chaos (need peered ASes, prefixes, non-transit peers, routers)")
	}
	return t, nil
}

// weightedAS draws an AS proportionally to its demand weight.
func weightedAS(rng *rand.Rand, ases []*EdgeAS) *EdgeAS {
	var total float64
	for _, as := range ases {
		total += as.Weight
	}
	x := rng.Float64() * total
	for _, as := range ases {
		x -= as.Weight
		if x <= 0 {
			return as
		}
	}
	return ases[len(ases)-1]
}
