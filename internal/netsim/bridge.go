package netsim

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
)

// Bridge exposes an in-memory connection (a PoP's BMP stream or
// injection session) on a real TCP listener, so that an external
// controller process can attach: popsim runs bridges, edgefabricd dials
// them. Exactly one remote connection is served — these are
// point-to-point control sessions — and later connections are refused.
type Bridge struct {
	ln    net.Listener
	inner net.Conn

	mu     sync.Mutex
	served bool
}

// NewBridge listens on addr (e.g. "127.0.0.1:11019") and will splice the
// first accepted connection to inner.
func NewBridge(addr string, inner net.Conn) (*Bridge, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsim: bridge listen %s: %w", addr, err)
	}
	return &Bridge{ln: ln, inner: inner}, nil
}

// Addr returns the listener address.
func (b *Bridge) Addr() net.Addr { return b.ln.Addr() }

// Serve accepts the single remote connection and splices it with the
// inner connection until either side closes or ctx ends. It returns nil
// on a clean end.
func (b *Bridge) Serve(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() { b.ln.Close() })
	defer stop()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		b.mu.Lock()
		if b.served {
			b.mu.Unlock()
			conn.Close()
			continue
		}
		b.served = true
		b.mu.Unlock()
		b.ln.Close() // single-session: stop accepting

		stopConn := context.AfterFunc(ctx, func() {
			conn.Close()
			b.inner.Close()
		})
		errs := make(chan error, 2)
		go func() {
			_, err := io.Copy(conn, b.inner)
			conn.Close()
			errs <- err
		}()
		go func() {
			_, err := io.Copy(b.inner, conn)
			b.inner.Close()
			errs <- err
		}()
		err1 := <-errs
		err2 := <-errs
		stopConn()
		if ctx.Err() != nil {
			return nil
		}
		if err1 != nil {
			return err1
		}
		return err2
	}
}

// Close stops the bridge.
func (b *Bridge) Close() {
	b.ln.Close()
	b.inner.Close()
}
