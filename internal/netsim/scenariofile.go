package netsim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"time"

	"edgefabric/internal/rib"
)

// Named cross-reference errors: a hand-written file that points a peer
// or interface at something that does not exist fails with the entity's
// name, not a generic topology error. Callers can match with errors.Is.
var (
	// ErrUnknownRouter marks a peer or interface referencing a router
	// name the file does not define.
	ErrUnknownRouter = errors.New("references unknown router")
	// ErrUnknownInterface marks a peer referencing an interface ID the
	// file does not define.
	ErrUnknownInterface = errors.New("references unknown interface")
)

// ScenarioFile is the JSON form of a hand-written testbed: explicit
// routers, interfaces, peers, and demand-weighted announcements. It
// exists so popsim (and experiments) can run operator-authored
// topologies instead of the synthesizer's.
//
// Announcement weights define the demand distribution: each announced
// prefix's demand share is its weight divided by the sum of all weights
// (prefixes announced by several peers count once, keyed by the first
// announcement's weight).
type ScenarioFile struct {
	// Name labels the PoP.
	Name string `json:"name"`
	// LocalAS is the content provider AS.
	LocalAS uint32 `json:"local_as"`
	// Routers lists the peering routers.
	Routers []RouterFile `json:"routers"`
	// Interfaces lists egress ports.
	Interfaces []InterfaceFile `json:"interfaces"`
	// Peers lists BGP neighbors with their announcements.
	Peers []PeerFile `json:"peers"`
	// Events is the optional scheduled event timeline; see EventFile.
	Events []EventFile `json:"events,omitempty"`
}

// RouterFile is one peering router.
type RouterFile struct {
	Name     string `json:"name"`
	RouterID string `json:"router_id"`
}

// InterfaceFile is one egress port.
type InterfaceFile struct {
	ID           int     `json:"id"`
	Router       string  `json:"router"`
	Name         string  `json:"name"`
	CapacityGbps float64 `json:"capacity_gbps"`
}

// PeerFile is one BGP neighbor.
type PeerFile struct {
	Name      string         `json:"name"`
	AS        uint32         `json:"as"`
	Addr      string         `json:"addr"`
	Class     rib.PeerClass  `json:"class"`
	Interface int            `json:"interface"`
	Router    string         `json:"router"`
	BaseRTTMS float64        `json:"base_rtt_ms"`
	Announces []AnnounceFile `json:"announces"`
}

// AnnounceFile is one announcement with its demand weight.
type AnnounceFile struct {
	Prefix string   `json:"prefix"`
	Path   []uint32 `json:"path"`
	MED    uint32   `json:"med,omitempty"`
	// Weight is the prefix's unnormalized demand share; zero means the
	// prefix receives no demand (e.g. a transit's copy of another
	// peer's prefix — leave Weight on one announcement only).
	Weight float64 `json:"weight,omitempty"`
}

// EventFile is one scheduled event on the scenario's timeline. `at` and
// `duration` are Go duration strings ("90s", "10m", "1h30m") offset
// from the run start; which target field applies depends on `kind`:
//
//	flash-crowd  as         demand ×magnitude on every prefix of the AS
//	live-event   (none)     PoP-wide ramp to ×magnitude at the midpoint
//	ddos-surge   prefix     demand ×magnitude on one prefix
//	demand-shift (none)     PoP-wide square step to ×magnitude (<1 region
//	                        loss draining away, >1 anycast re-homing in)
//	depeer       peer       session down; restored at end (duration
//	                        omitted = permanent)
//	drain        interface  capacity ×magnitude (default 0.05)
//	brownout     interface  capacity ×magnitude (default 0.5)
//	bmp-kill     router     BMP stream severed, redials refused
//	ibgp-reset   router     controller iBGP session flapped once
//	sflow-loss   (none)     collector datagram loss at rate magnitude
//	                        (≥ 1 = total blackout)
//	path-rtt     peer       +magnitude ms on every path via the peer
//	lossy-path   peer       magnitude loss fraction on paths via the peer
type EventFile struct {
	Kind      string  `json:"kind"`
	At        string  `json:"at"`
	Duration  string  `json:"duration,omitempty"`
	Magnitude float64 `json:"magnitude,omitempty"`
	Prefix    string  `json:"prefix,omitempty"`
	AS        uint32  `json:"as,omitempty"`
	Peer      string  `json:"peer,omitempty"`
	Interface int     `json:"interface,omitempty"`
	Router    string  `json:"router,omitempty"`
}

// build parses the file form into an Event (target validation happens
// later, in NewEventEngine, against the live topology).
func (e *EventFile) build(idx int) (Event, error) {
	ev := Event{
		Kind:      EventKind(e.Kind),
		Magnitude: e.Magnitude,
		AS:        e.AS,
		Peer:      e.Peer,
		Interface: e.Interface,
		Router:    e.Router,
	}
	at, err := time.ParseDuration(e.At)
	if err != nil {
		return ev, fmt.Errorf("netsim: event %d (%s): bad at: %w", idx, e.Kind, err)
	}
	ev.At = at
	if e.Duration != "" {
		d, err := time.ParseDuration(e.Duration)
		if err != nil {
			return ev, fmt.Errorf("netsim: event %d (%s): bad duration: %w", idx, e.Kind, err)
		}
		ev.Duration = d
	}
	if e.Prefix != "" {
		p, err := netip.ParsePrefix(e.Prefix)
		if err != nil {
			return ev, fmt.Errorf("netsim: event %d (%s): bad prefix: %w", idx, e.Kind, err)
		}
		ev.Prefix = p.Masked()
	}
	return ev, nil
}

// ReadScenarioFile parses a scenario from r.
func ReadScenarioFile(r io.Reader) (*ScenarioFile, error) {
	var f ScenarioFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("netsim: decode scenario: %w", err)
	}
	return &f, nil
}

// LoadScenarioFile reads and builds a scenario from a JSON file.
func LoadScenarioFile(path string) (*Scenario, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := ReadScenarioFile(in)
	if err != nil {
		return nil, err
	}
	return f.Build()
}

// Build materializes and validates the scenario.
func (f *ScenarioFile) Build() (*Scenario, error) {
	topo := &Topology{Name: f.Name, LocalAS: f.LocalAS}
	routerNames := make(map[string]bool, len(f.Routers))
	for _, r := range f.Routers {
		id, err := netip.ParseAddr(r.RouterID)
		if err != nil {
			return nil, fmt.Errorf("netsim: router %q: %w", r.Name, err)
		}
		topo.Routers = append(topo.Routers, Router{Name: r.Name, RouterID: id})
		routerNames[r.Name] = true
	}
	ifIDs := make(map[int]bool, len(f.Interfaces))
	for _, i := range f.Interfaces {
		// Name the bad reference here, before topo.Validate's generic
		// integrity pass: a hand-written file should say which entity is
		// wrong, not just that something is.
		if !routerNames[i.Router] {
			return nil, fmt.Errorf("netsim: interface %q (id %d): %w %q",
				i.Name, i.ID, ErrUnknownRouter, i.Router)
		}
		topo.Interfaces = append(topo.Interfaces, Interface{
			ID:          i.ID,
			Router:      i.Router,
			Name:        i.Name,
			CapacityBps: i.CapacityGbps * 1e9,
		})
		ifIDs[i.ID] = true
	}
	prefixSeen := make(map[netip.Prefix]*PrefixInfo)
	var prefixes []*PrefixInfo
	ases := make(map[uint32]*EdgeAS)
	for _, p := range f.Peers {
		addr, err := netip.ParseAddr(p.Addr)
		if err != nil {
			return nil, fmt.Errorf("netsim: peer %q: %w", p.Name, err)
		}
		if !routerNames[p.Router] {
			return nil, fmt.Errorf("netsim: peer %q: %w %q", p.Name, ErrUnknownRouter, p.Router)
		}
		if !ifIDs[p.Interface] {
			return nil, fmt.Errorf("netsim: peer %q: %w %d", p.Name, ErrUnknownInterface, p.Interface)
		}
		peer := Peer{
			Name:        p.Name,
			AS:          p.AS,
			Addr:        addr,
			Class:       p.Class,
			InterfaceID: p.Interface,
			Router:      p.Router,
			BaseRTTMS:   p.BaseRTTMS,
		}
		if peer.BaseRTTMS == 0 {
			peer.BaseRTTMS = 20
		}
		for _, a := range p.Announces {
			prefix, err := netip.ParsePrefix(a.Prefix)
			if err != nil {
				return nil, fmt.Errorf("netsim: peer %q announce: %w", p.Name, err)
			}
			prefix = prefix.Masked()
			peer.Announces = append(peer.Announces, Announcement{
				Prefix: prefix,
				Path:   a.Path,
				MED:    a.MED,
			})
			if a.Weight <= 0 {
				continue
			}
			if _, dup := prefixSeen[prefix]; dup {
				return nil, fmt.Errorf("netsim: prefix %s has weight on multiple announcements", prefix)
			}
			origin := uint32(0)
			if len(a.Path) > 0 {
				origin = a.Path[len(a.Path)-1]
			}
			pi := &PrefixInfo{
				Prefix:   prefix,
				OriginAS: origin,
				Weight:   a.Weight,
				RepAddr:  repAddr(prefix),
			}
			prefixSeen[prefix] = pi
			prefixes = append(prefixes, pi)
			as, ok := ases[origin]
			if !ok {
				as = &EdgeAS{AS: origin, Class: rib.ClassTransit}
				ases[origin] = as
			}
			as.Prefixes = append(as.Prefixes, prefix)
			as.Weight += a.Weight
			if p.Class < as.Class {
				as.Class = p.Class
			}
		}
		topo.Peers = append(topo.Peers, peer)
	}
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("netsim: scenario %q announces no weighted prefixes", f.Name)
	}
	var sum float64
	for _, pi := range prefixes {
		sum += pi.Weight
	}
	for _, pi := range prefixes {
		pi.Weight /= sum
	}
	for _, as := range ases {
		as.Weight /= sum
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	var events []Event
	for i := range f.Events {
		ev, err := f.Events[i].build(i)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	return &Scenario{
		Topo:     topo,
		Prefixes: prefixes,
		ASes:     ases,
		Config:   SynthConfig{Name: f.Name, LocalAS: f.LocalAS, Seed: 1},
		Events:   events,
	}, nil
}

// repAddr picks a representative host address inside a prefix.
func repAddr(p netip.Prefix) netip.Addr {
	a := p.Addr()
	if a.Is4() {
		b := a.As4()
		b[3] |= 1
		return netip.AddrFrom4(b)
	}
	b := a.As16()
	b[15] |= 1
	return netip.AddrFrom16(b)
}
