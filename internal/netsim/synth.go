package netsim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"

	"edgefabric/internal/rib"
)

// SynthConfig parameterizes the synthetic PoP scenario generator. The
// defaults produce a PoP in the spirit of the paper's setting: a couple
// of peering routers, a handful of high-volume private peers whose PNIs
// are not all generously provisioned, a public IXP fabric with dozens of
// peers plus a route server, and two transit providers that can reach
// everything at a longer AS path.
type SynthConfig struct {
	// Seed drives all randomness; equal seeds give equal scenarios.
	Seed int64
	// Name labels the PoP. Default "pop-1".
	Name string
	// PoPIndex distinguishes this PoP's router IDs (sFlow agent
	// addresses) from other PoPs synthesized for the same fleet: router
	// r gets 10.255.{PoPIndex}.{r+1}. Default 0, the historical single
	// PoP address block. A fleet host sharing one sFlow listener
	// requires the blocks to be disjoint, since samples demux to PoPs
	// by agent address.
	PoPIndex int
	// LocalAS is the content provider AS. Default 64500.
	LocalAS uint32
	// Routers is the number of peering routers. Default 2.
	Routers int
	// Prefixes is the number of user prefixes. Default 4000.
	Prefixes int
	// V6Fraction is the share of prefixes that are IPv6. Default 0.2.
	V6Fraction float64
	// EdgeASes is the number of user (eyeball) ASes. Default 300.
	EdgeASes int
	// PrivatePeers is how many of the highest-volume ASes get PNIs.
	// Default 10.
	PrivatePeers int
	// PublicPeers is how many of the next tier peer bilaterally at the
	// IXP. Default 40.
	PublicPeers int
	// RouteServerMembers is how many smaller ASes are reachable via the
	// IXP route server. Default 60.
	RouteServerMembers int
	// Transits is the number of transit providers. Default 2.
	Transits int
	// PeakBps is the PoP demand peak the capacities are scaled against.
	// Default 400e9.
	PeakBps float64
	// PNIHeadroomMin/Max bound the ratio of PNI capacity to the peer
	// AS's peak demand. Values below 1 create the capacity crunch the
	// paper §3 documents. Defaults 0.7 and 1.8.
	PNIHeadroomMin, PNIHeadroomMax float64
	// IXPHeadroom is the ratio of each IXP port's capacity to the peak
	// demand of the ASes behind it. Default 1.0.
	IXPHeadroom float64
	// TransitHeadroom is the ratio of total transit capacity to total
	// peak demand. Default 1.5.
	TransitHeadroom float64
	// ZipfExponent shapes the per-AS volume distribution. Default 1.1.
	ZipfExponent float64
}

func (c *SynthConfig) setDefaults() {
	if c.Name == "" {
		c.Name = "pop-1"
	}
	if c.LocalAS == 0 {
		c.LocalAS = 64500
	}
	if c.Routers == 0 {
		c.Routers = 2
	}
	if c.Prefixes == 0 {
		c.Prefixes = 4000
	}
	if c.V6Fraction == 0 {
		c.V6Fraction = 0.2
	}
	if c.EdgeASes == 0 {
		c.EdgeASes = 300
	}
	if c.PrivatePeers == 0 {
		c.PrivatePeers = 10
	}
	if c.PublicPeers == 0 {
		c.PublicPeers = 40
	}
	if c.RouteServerMembers == 0 {
		c.RouteServerMembers = 60
	}
	if c.Transits == 0 {
		c.Transits = 2
	}
	if c.PeakBps == 0 {
		c.PeakBps = 400e9
	}
	if c.PNIHeadroomMin == 0 {
		c.PNIHeadroomMin = 0.7
	}
	if c.PNIHeadroomMax == 0 {
		c.PNIHeadroomMax = 1.8
	}
	if c.IXPHeadroom == 0 {
		c.IXPHeadroom = 1.0
	}
	if c.TransitHeadroom == 0 {
		c.TransitHeadroom = 1.5
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 1.1
	}
}

// EdgeAS describes one user AS of the synthetic scenario.
type EdgeAS struct {
	// AS is the AS number.
	AS uint32
	// Class is how the PoP reaches it at its best: private, public,
	// route server, or transit-only.
	Class rib.PeerClass
	// Weight is the AS's share of PoP demand.
	Weight float64
	// Prefixes are the prefixes it originates.
	Prefixes []netip.Prefix
}

// Scenario is a fully synthesized experiment input: the PoP topology,
// the prefix universe with demand weights, and the per-AS metadata.
type Scenario struct {
	// Topo is the PoP.
	Topo *Topology
	// Prefixes is the demand-weighted prefix universe.
	Prefixes []*PrefixInfo
	// ASes maps AS number to its metadata.
	ASes map[uint32]*EdgeAS
	// Config echoes the (defaulted) generator config.
	Config SynthConfig
	// Events is the scenario's scheduled event timeline (offsets from
	// the run start). Harnesses attach it via an EventEngine; a nil
	// slice means a quiet scenario.
	Events []Event
}

// PrefixByAddr returns the PrefixInfo covering a representative address,
// for tests.
func (s *Scenario) PrefixByAddr(a netip.Addr) *PrefixInfo {
	for _, p := range s.Prefixes {
		if p.Prefix.Contains(a) {
			return p
		}
	}
	return nil
}

// NewDemand builds a DemandModel over the scenario's prefixes.
func (s *Scenario) NewDemand(cfg DemandConfig) (*DemandModel, error) {
	if cfg.PeakBps == 0 {
		cfg.PeakBps = s.Config.PeakBps
	}
	if cfg.Seed == 0 {
		cfg.Seed = s.Config.Seed
	}
	return NewDemandModel(cfg, s.Prefixes)
}

// Synthesize generates a Scenario from cfg. It is deterministic in
// cfg.Seed.
func Synthesize(cfg SynthConfig) (*Scenario, error) {
	cfg.setDefaults()
	// Every AS originates at least one prefix, so more ASes than
	// prefixes is unsatisfiable; shrink the AS count instead of looping
	// forever trying to scale per-AS prefix counts below one.
	if cfg.EdgeASes > cfg.Prefixes {
		cfg.EdgeASes = cfg.Prefixes
	}
	if cfg.PrivatePeers+cfg.PublicPeers+cfg.RouteServerMembers > cfg.EdgeASes {
		return nil, fmt.Errorf("netsim: peer counts (%d) exceed EdgeASes (%d); tiny scenarios need explicit peer counts",
			cfg.PrivatePeers+cfg.PublicPeers+cfg.RouteServerMembers, cfg.EdgeASes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// --- Edge ASes with Zipf demand shares and Pareto prefix counts ---
	asWeights := ZipfWeights(cfg.EdgeASes, cfg.ZipfExponent)
	ases := make([]*EdgeAS, cfg.EdgeASes)
	// Pareto-ish prefix counts, bigger ASes get more prefixes.
	counts := make([]int, cfg.EdgeASes)
	total := 0
	for i := range counts {
		c := 1 + int(float64(cfg.Prefixes)*asWeights[i]*(0.5+rng.Float64()))
		counts[i] = c
		total += c
	}
	// Scale counts to the requested prefix total.
	scaled := 0
	for i := range counts {
		counts[i] = max(1, counts[i]*cfg.Prefixes/total)
		scaled += counts[i]
	}
	for i := 0; scaled < cfg.Prefixes; i = (i + 1) % cfg.EdgeASes {
		counts[i]++
		scaled++
	}
	for i := 0; scaled > cfg.Prefixes && scaled > cfg.EdgeASes; i = (i + 1) % cfg.EdgeASes {
		if counts[i] > 1 {
			counts[i]--
			scaled--
		}
	}

	var prefixes []*PrefixInfo
	nextV4 := 0
	nextV6 := 0
	for i := range ases {
		as := &EdgeAS{AS: 65000 + uint32(i), Weight: asWeights[i], Class: rib.ClassTransit}
		// Split the AS weight across its prefixes with an inner Zipf.
		inner := ZipfWeights(counts[i], 0.9)
		// Shuffle so the heavy prefix isn't always the numerically first.
		rng.Shuffle(len(inner), func(a, b int) { inner[a], inner[b] = inner[b], inner[a] })
		for j := 0; j < counts[i]; j++ {
			var p netip.Prefix
			var rep netip.Addr
			if rng.Float64() < cfg.V6Fraction {
				p, rep = v6Prefix(nextV6)
				nextV6++
			} else {
				p, rep = v4Prefix(nextV4)
				nextV4++
			}
			as.Prefixes = append(as.Prefixes, p)
			prefixes = append(prefixes, &PrefixInfo{
				Prefix:   p,
				OriginAS: as.AS,
				Weight:   asWeights[i] * inner[j],
				RepAddr:  rep,
			})
		}
		ases[i] = as
	}
	// Normalize residual float error.
	var sum float64
	for _, p := range prefixes {
		sum += p.Weight
	}
	for _, p := range prefixes {
		p.Weight /= sum
	}

	// --- Assign peering tiers by AS volume rank ---
	order := make([]int, len(ases))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ases[order[a]].Weight > ases[order[b]].Weight })
	for r, idx := range order {
		switch {
		case r < cfg.PrivatePeers:
			ases[idx].Class = rib.ClassPrivate
		case r < cfg.PrivatePeers+cfg.PublicPeers:
			ases[idx].Class = rib.ClassPublic
		case r < cfg.PrivatePeers+cfg.PublicPeers+cfg.RouteServerMembers:
			ases[idx].Class = rib.ClassRouteServer
		}
	}

	// --- Topology ---
	topo := &Topology{Name: cfg.Name, LocalAS: cfg.LocalAS}
	for r := 0; r < cfg.Routers; r++ {
		topo.Routers = append(topo.Routers, Router{
			Name:     fmt.Sprintf("pr%d", r+1),
			RouterID: netip.AddrFrom4([4]byte{10, 255, byte(cfg.PoPIndex), byte(r + 1)}),
		})
	}
	ifID := 0
	peerHost := 1
	peerAddr := func() netip.Addr {
		a := netip.AddrFrom4([4]byte{172, 20, byte(peerHost >> 8), byte(peerHost)})
		peerHost++
		return a
	}
	routerOf := func(i int) string { return topo.Routers[i%cfg.Routers].Name }

	// Private peers: one PNI interface each, capacity tied to AS peak.
	for k, idx := range order[:cfg.PrivatePeers] {
		as := ases[idx]
		head := cfg.PNIHeadroomMin + rng.Float64()*(cfg.PNIHeadroomMax-cfg.PNIHeadroomMin)
		capBps := as.Weight * cfg.PeakBps * head
		router := routerOf(k)
		topo.Interfaces = append(topo.Interfaces, Interface{
			ID:          ifID,
			Router:      router,
			Name:        fmt.Sprintf("%s:pni-as%d", router, as.AS),
			CapacityBps: capBps,
		})
		topo.Peers = append(topo.Peers, Peer{
			Name:        fmt.Sprintf("as%d-pni", as.AS),
			AS:          as.AS,
			Addr:        peerAddr(),
			Class:       rib.ClassPrivate,
			InterfaceID: ifID,
			Router:      router,
			Announces:   announcements(as, nil),
			BaseRTTMS:   8 + rng.Float64()*20,
		})
		ifID++
	}

	// IXP: one shared port per router; public peers and the route
	// server spread across them.
	var publicWeight float64
	for _, idx := range order[cfg.PrivatePeers : cfg.PrivatePeers+cfg.PublicPeers+cfg.RouteServerMembers] {
		publicWeight += ases[idx].Weight
	}
	ixpIFs := make([]int, cfg.Routers)
	for r := 0; r < cfg.Routers; r++ {
		capBps := publicWeight * cfg.PeakBps * cfg.IXPHeadroom / float64(cfg.Routers)
		topo.Interfaces = append(topo.Interfaces, Interface{
			ID:          ifID,
			Router:      topo.Routers[r].Name,
			Name:        fmt.Sprintf("%s:ixp", topo.Routers[r].Name),
			CapacityBps: capBps,
		})
		ixpIFs[r] = ifID
		ifID++
	}
	for k, idx := range order[cfg.PrivatePeers : cfg.PrivatePeers+cfg.PublicPeers] {
		as := ases[idx]
		r := k % cfg.Routers
		topo.Peers = append(topo.Peers, Peer{
			Name:        fmt.Sprintf("as%d-ixp", as.AS),
			AS:          as.AS,
			Addr:        peerAddr(),
			Class:       rib.ClassPublic,
			InterfaceID: ixpIFs[r],
			Router:      topo.Routers[r].Name,
			Announces:   announcements(as, nil),
			BaseRTTMS:   12 + rng.Float64()*25,
		})
	}
	// Route server: one session per router port, transparently carrying
	// member AS paths.
	rsMembers := order[cfg.PrivatePeers+cfg.PublicPeers : cfg.PrivatePeers+cfg.PublicPeers+cfg.RouteServerMembers]
	for r := 0; r < cfg.Routers; r++ {
		var ann []Announcement
		for k, idx := range rsMembers {
			if k%cfg.Routers != r {
				continue
			}
			ann = append(ann, announcements(ases[idx], nil)...)
		}
		topo.Peers = append(topo.Peers, Peer{
			Name:        fmt.Sprintf("route-server-%d", r+1),
			AS:          64700 + uint32(r),
			Addr:        peerAddr(),
			Class:       rib.ClassRouteServer,
			InterfaceID: ixpIFs[r],
			Router:      topo.Routers[r].Name,
			Announces:   ann,
			BaseRTTMS:   15 + rng.Float64()*25,
		})
	}

	// Transits: full-table providers on dedicated interfaces.
	transitCap := cfg.PeakBps * cfg.TransitHeadroom / float64(cfg.Transits)
	for tIdx := 0; tIdx < cfg.Transits; tIdx++ {
		transitAS := 64600 + uint32(tIdx)
		router := routerOf(tIdx)
		topo.Interfaces = append(topo.Interfaces, Interface{
			ID:          ifID,
			Router:      router,
			Name:        fmt.Sprintf("%s:transit-as%d", router, transitAS),
			CapacityBps: transitCap,
		})
		var ann []Announcement
		for _, as := range ases {
			via := []uint32{transitAS}
			// Some origins sit one AS deeper behind this transit; which
			// ones differ per transit, so transits present different
			// path lengths for the same prefix.
			if hash2(cfg.Seed, uint64(as.AS), uint64(transitAS))%100 < 40 {
				via = append(via, 64800+uint32(tIdx))
			}
			path := append(via, as.AS)
			for _, p := range as.Prefixes {
				ann = append(ann, Announcement{Prefix: p, Path: path})
			}
		}
		topo.Peers = append(topo.Peers, Peer{
			Name:        fmt.Sprintf("transit-as%d", transitAS),
			AS:          transitAS,
			Addr:        peerAddr(),
			Class:       rib.ClassTransit,
			InterfaceID: ifID,
			Router:      router,
			Announces:   ann,
			BaseRTTMS:   25 + rng.Float64()*30,
		})
		ifID++
	}

	if err := topo.Validate(); err != nil {
		return nil, err
	}
	asMap := make(map[uint32]*EdgeAS, len(ases))
	for _, a := range ases {
		asMap[a.AS] = a
	}
	return &Scenario{Topo: topo, Prefixes: prefixes, ASes: asMap, Config: cfg}, nil
}

// announcements renders an AS's own prefixes as announcements with the
// given AS-path prefix (nil means the path is just the origin AS).
func announcements(as *EdgeAS, via []uint32) []Announcement {
	out := make([]Announcement, 0, len(as.Prefixes))
	path := append(append([]uint32(nil), via...), as.AS)
	for _, p := range as.Prefixes {
		out = append(out, Announcement{Prefix: p, Path: path})
	}
	return out
}

// v4Prefix returns the i-th synthetic user /24 and a representative
// host in it. The first 64k live in 10.0.0.0/8 (the historical layout,
// kept byte-identical so seeds reproduce); million-prefix tables spill
// into the successive /8s (11/8, 12/8, ...).
func v4Prefix(i int) (netip.Prefix, netip.Addr) {
	a := netip.AddrFrom4([4]byte{byte(10 + i>>16), byte(i >> 8), byte(i), 0})
	rep := netip.AddrFrom4([4]byte{byte(10 + i>>16), byte(i >> 8), byte(i), 1})
	return netip.PrefixFrom(a, 24), rep
}

// v6Prefix returns the i-th synthetic user /48. The first 64k live in
// 2001:db8::/32 (historical layout); the spill goes to the larger
// documentation block 3fff::/20 (RFC 9637), which holds 2^28 /48s.
func v6Prefix(i int) (netip.Prefix, netip.Addr) {
	var b [16]byte
	if i < 1<<16 {
		copy(b[:], []byte{0x20, 0x01, 0x0d, 0xb8})
	} else {
		b[0], b[1] = 0x3f, 0xff
		b[2] = byte(i >> 24 & 0x0f)
		b[3] = byte(i >> 16)
	}
	b[4] = byte(i >> 8)
	b[5] = byte(i)
	addr := netip.AddrFrom16(b)
	b[15] = 1
	rep := netip.AddrFrom16(b)
	return netip.PrefixFrom(addr, 48), rep
}

// hash2 is a small deterministic hash for structural decisions.
func hash2(seed int64, a, b uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	putU64(buf[:], uint64(seed))
	h.Write(buf[:])
	putU64(buf[:], a)
	h.Write(buf[:])
	putU64(buf[:], b)
	h.Write(buf[:])
	return h.Sum64()
}
