package netsim

import (
	"net/netip"
	"sort"
	"time"

	"edgefabric/internal/rib"
	"edgefabric/internal/sflow"
)

// PrefixTick is the dataplane's per-prefix result for one tick.
type PrefixTick struct {
	// DemandBps is the offered load.
	DemandBps float64
	// EgressIF is the interface the traffic left through (-1 if
	// unrouted).
	EgressIF int
	// PeerAddr identifies the route used.
	PeerAddr netip.Addr
	// Class is the peering tier of the route used.
	Class rib.PeerClass
	// Injected marks traffic carried by a controller override.
	Injected bool
	// HasSplit marks a split override: half the demand leaves via
	// SplitIF instead (the controller announced a more-specific half).
	HasSplit bool
	// SplitIF is the egress interface of the split half (valid only
	// when HasSplit).
	SplitIF int
	// SplitBps is the demand carried by the split half.
	SplitBps float64
	// Members describes the weighted multipath set carrying the prefix
	// when the controller installed one (nil for single-path
	// forwarding). EgressIF/PeerAddr/Class then describe the heaviest
	// member, and RTTms/LossFrac are demand-weighted across members.
	Members []MemberTick
	// RTTms is the experienced round-trip time including congestion
	// (of the aggregate's primary share).
	RTTms float64
	// LossFrac is the fraction of the prefix's primary-share traffic
	// lost (interface drops plus scripted path loss).
	LossFrac float64
}

// MemberTick is one weighted member of a multipath set for one tick.
type MemberTick struct {
	// EgressIF is the member's egress interface.
	EgressIF int
	// NextHop is the member route's next hop (the underlying peer).
	NextHop netip.Addr
	// WeightPct is the controller-announced share in percent.
	WeightPct int
	// Bps is the demand the member carried this tick.
	Bps float64
}

// TickStats is the dataplane's result for one tick.
type TickStats struct {
	// Time is the tick's virtual timestamp.
	Time time.Time
	// Duration is the tick length.
	Duration time.Duration
	// IfLoadBps is offered load per interface.
	IfLoadBps map[int]float64
	// IfDropsBps is dropped load per interface.
	IfDropsBps map[int]float64
	// Prefix holds the per-prefix details.
	Prefix map[netip.Prefix]*PrefixTick
	// UnroutedBps is demand with no route at all.
	UnroutedBps float64
}

// TotalDemandBps sums offered load across interfaces.
func (s *TickStats) TotalDemandBps() float64 {
	var t float64
	for _, v := range s.IfLoadBps {
		t += v
	}
	return t
}

// TotalDropsBps sums drops across interfaces.
func (s *TickStats) TotalDropsBps() float64 {
	var t float64
	for _, v := range s.IfDropsBps {
		t += v
	}
	return t
}

// Utilization returns load/capacity for an interface in stats.
func (s *TickStats) Utilization(topo *Topology, ifID int) float64 {
	ifc := topo.InterfaceByID(ifID)
	if ifc == nil || ifc.CapacityBps == 0 {
		return 0
	}
	return s.IfLoadBps[ifID] / ifc.CapacityBps
}

// Dataplane assigns per-prefix demand to egress interfaces according to
// the PoP's forwarding table (which includes any controller-injected
// overrides), models congestion, and feeds the sFlow agents.
type Dataplane struct {
	topo   *Topology
	table  *rib.Table
	perf   *PathPerf
	demand *DemandModel
	// agents maps router name to its sFlow agent; nil disables
	// sampling.
	agents map[string]*sflow.Agent
	// bestClass caches the best available class per prefix for the
	// anomaly model; computed lazily from the table.
	bestClass map[netip.Prefix]uint8
	bestVer   uint64
}

// NewDataplane wires a dataplane over the PoP's forwarding table.
func NewDataplane(topo *Topology, table *rib.Table, perf *PathPerf, demand *DemandModel, agents map[string]*sflow.Agent) *Dataplane {
	return &Dataplane{
		topo:   topo,
		table:  table,
		perf:   perf,
		demand: demand,
		agents: agents,
	}
}

// refreshBestClass recomputes the best organic class per prefix when the
// table changed (ignoring controller routes, which do not define the
// "preferred class" anomalies attach to).
func (dp *Dataplane) refreshBestClass() {
	v := dp.table.Version()
	if dp.bestClass != nil && v == dp.bestVer {
		return
	}
	m := make(map[netip.Prefix]uint8, dp.table.Len())
	dp.table.EachRoutes(func(p netip.Prefix, routes []*rib.Route) {
		best := uint8(255)
		for _, r := range routes {
			if r.PeerClass == rib.ClassController {
				continue
			}
			if uint8(r.PeerClass) < best {
				best = uint8(r.PeerClass)
			}
		}
		m[p] = best
	})
	dp.bestClass = m
	dp.bestVer = v
}

// Tick advances the dataplane by dt at virtual time t: computes offered
// load per interface from the demand model, derives congestion and
// drops, reports sampled bytes to the sFlow agents, and returns the tick
// statistics.
func (dp *Dataplane) Tick(t time.Time, dt time.Duration) *TickStats {
	dp.refreshBestClass()
	stats := &TickStats{
		Time:       t,
		Duration:   dt,
		IfLoadBps:  make(map[int]float64, len(dp.topo.Interfaces)),
		IfDropsBps: make(map[int]float64),
		Prefix:     make(map[netip.Prefix]*PrefixTick, len(dp.demand.Prefixes())),
	}
	// Pass 1: route each prefix and accumulate interface load.
	viaPeer := make(map[netip.Prefix]*Peer, len(dp.demand.Prefixes()))
	for _, pi := range dp.demand.Prefixes() {
		bps := dp.demand.Rate(pi, t)
		pt := &PrefixTick{DemandBps: bps, EgressIF: -1}
		stats.Prefix[pi.Prefix] = pt
		route := dp.table.Best(pi.Prefix)
		if route == nil {
			route = dp.table.Lookup(pi.RepAddr)
		}
		if route == nil {
			stats.UnroutedBps += bps
			continue
		}
		pt.EgressIF = route.EgressIF
		pt.PeerAddr = route.PeerAddr
		// Injected overrides identify the underlying peer by next hop;
		// report the underlying tier so traffic shares stay meaningful.
		if route.PeerClass == rib.ClassController {
			pt.Injected = true
			// A weighted multipath set: the controller installed one
			// route per member slot; hash demand across them in
			// proportion to the announced weights.
			if _, _, ok := rib.ParseMultipathCommunities(route.Communities); ok {
				if members := dp.multipathMembers(pi.Prefix, bps); len(members) > 0 {
					pt.Members = members
					pt.EgressIF = members[0].EgressIF
					if peer := dp.topo.PeerByAddr(members[0].NextHop); peer != nil {
						viaPeer[pi.Prefix] = peer
						pt.Class = peer.Class
					}
					for _, m := range members {
						stats.IfLoadBps[m.EgressIF] += m.Bps
					}
					continue
				}
			}
			if peer := dp.topo.PeerByAddr(route.NextHop); peer != nil {
				viaPeer[pi.Prefix] = peer
				pt.Class = peer.Class
			}
		} else {
			pt.Class = route.PeerClass
			viaPeer[pi.Prefix] = dp.topo.PeerByAddr(route.PeerAddr)
			// Split override: a controller route on a more-specific
			// half steers half the aggregate's demand via LPM.
			if lo, hi, ok := rib.Split(pi.Prefix); ok {
				for _, half := range [2]netip.Prefix{lo, hi} {
					hr := dp.table.Best(half)
					if hr == nil || hr.PeerClass != rib.ClassController {
						continue
					}
					pt.Injected = true
					pt.HasSplit = true
					pt.SplitIF = hr.EgressIF
					pt.SplitBps = bps / 2
					bps -= pt.SplitBps
					stats.IfLoadBps[hr.EgressIF] += pt.SplitBps
					break
				}
			}
		}
		stats.IfLoadBps[route.EgressIF] += bps
	}
	// Pass 2: congestion, drops, latency, and sampling.
	for _, pi := range dp.demand.Prefixes() {
		pt := stats.Prefix[pi.Prefix]
		if pt.EgressIF < 0 {
			continue
		}
		if len(pt.Members) > 0 {
			dp.tickMultipath(pi, pt, stats, dt)
			continue
		}
		primaryBps := pt.DemandBps - pt.SplitBps
		util := stats.Utilization(dp.topo, pt.EgressIF)
		drop := LossFraction(util)
		pt.LossFrac = drop
		var rtt float64
		if peer := viaPeer[pi.Prefix]; peer != nil {
			rtt = dp.perf.BaseRTT(pi.Prefix, peer, dp.bestClass[pi.Prefix])
			// Scripted path loss is experienced by the prefix but is not
			// an interface drop (the loss happens beyond the egress).
			pt.LossFrac = min(1, drop+dp.perf.PathLoss(peer.Addr))
		}
		pt.RTTms = rtt + CongestionDelay(util)
		if drop > 0 {
			stats.IfDropsBps[pt.EgressIF] += primaryBps * drop
		}
		if pt.HasSplit {
			if sUtil := stats.Utilization(dp.topo, pt.SplitIF); sUtil > 1 {
				stats.IfDropsBps[pt.SplitIF] += pt.SplitBps * LossFraction(sUtil)
			}
		}
		// sFlow sampling happens on the router that owns the egress
		// interface, against offered load.
		if dp.agents != nil {
			dp.observe(pi, pt.EgressIF, primaryBps, dt)
			if pt.HasSplit {
				dp.observe(pi, pt.SplitIF, pt.SplitBps, dt)
			}
		}
	}
	if dp.agents != nil {
		for _, ag := range dp.agents {
			_ = ag.Tick(uint32(dt.Milliseconds()))
		}
	}
	return stats
}

// multipathMembers gathers the controller's installed multipath member
// routes for a prefix (one per slot, stored under synthetic per-slot
// peer addresses) and splits bps across them in proportion to the
// announced weight communities. Partial installs (a member UPDATE not
// yet delivered) degrade gracefully: the present members carry the full
// demand, renormalized.
func (dp *Dataplane) multipathMembers(p netip.Prefix, bps float64) []MemberTick {
	type slotRoute struct {
		slot int
		pct  int
		r    *rib.Route
	}
	var slots []slotRoute
	total := 0
	for _, r := range dp.table.Routes(p) {
		if r.PeerClass != rib.ClassController {
			continue
		}
		slot, pct, ok := rib.ParseMultipathCommunities(r.Communities)
		if !ok || pct <= 0 {
			continue
		}
		slots = append(slots, slotRoute{slot: slot, pct: pct, r: r})
		total += pct
	}
	if len(slots) == 0 || total <= 0 {
		return nil
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a].slot < slots[b].slot })
	out := make([]MemberTick, len(slots))
	for i, s := range slots {
		out[i] = MemberTick{
			EgressIF:  s.r.EgressIF,
			NextHop:   s.r.NextHop,
			WeightPct: s.pct,
			Bps:       bps * float64(s.pct) / float64(total),
		}
	}
	return out
}

// tickMultipath computes pass-2 results for a prefix carried by a
// weighted multipath set: demand-weighted RTT and loss across members,
// per-member interface drops, and per-member sFlow observations.
func (dp *Dataplane) tickMultipath(pi *PrefixInfo, pt *PrefixTick, stats *TickStats, dt time.Duration) {
	var rtt, loss float64
	for _, m := range pt.Members {
		w := m.Bps / pt.DemandBps
		util := stats.Utilization(dp.topo, m.EgressIF)
		drop := LossFraction(util)
		memberLoss := drop
		var base float64
		if peer := dp.topo.PeerByAddr(m.NextHop); peer != nil {
			base = dp.perf.BaseRTT(pi.Prefix, peer, dp.bestClass[pi.Prefix])
			memberLoss = min(1, drop+dp.perf.PathLoss(peer.Addr))
		}
		rtt += w * (base + CongestionDelay(util))
		loss += w * memberLoss
		if drop > 0 {
			stats.IfDropsBps[m.EgressIF] += m.Bps * drop
		}
		if dp.agents != nil {
			dp.observe(pi, m.EgressIF, m.Bps, dt)
		}
	}
	pt.RTTms = rtt
	pt.LossFrac = loss
}

// observe reports offered bytes on an interface to its router's sFlow
// agent.
func (dp *Dataplane) observe(pi *PrefixInfo, ifID int, bps float64, dt time.Duration) {
	ifc := dp.topo.InterfaceByID(ifID)
	if ifc == nil {
		return
	}
	if ag := dp.agents[ifc.Router]; ag != nil {
		bytes := uint64(bps / 8 * dt.Seconds())
		_ = ag.ObserveBytes(pi.RepAddr, ifID, bytes)
	}
}

// RTTForRoute exposes the uncongested model RTT the dataplane would
// assign to prefix via the peer owning the given route — the alternate
// path measurement subsystem uses it to "measure" candidate paths.
func (dp *Dataplane) RTTForRoute(p netip.Prefix, r *rib.Route) float64 {
	dp.refreshBestClass()
	// Injected copies point at the same next hop as an organic route.
	peer := dp.topo.PeerByAddr(r.PeerAddr)
	if peer == nil {
		peer = dp.topo.PeerByAddr(r.NextHop)
	}
	if peer == nil {
		return 0
	}
	return dp.perf.BaseRTT(p, peer, dp.bestClass[p])
}

// LossForRoute exposes the scripted transport-loss fraction on the
// route's path, implementing the measurement subsystem's LossSource: the
// "retransmit counters" the optimizer uses to keep demand off lossy
// alternates.
func (dp *Dataplane) LossForRoute(_ netip.Prefix, r *rib.Route) float64 {
	peer := dp.topo.PeerByAddr(r.PeerAddr)
	if peer == nil {
		peer = dp.topo.PeerByAddr(r.NextHop)
	}
	if peer == nil {
		return 0
	}
	return dp.perf.PathLoss(peer.Addr)
}

// Perf exposes the path performance model (the scenario event layer
// scripts its impairment overlay).
func (dp *Dataplane) Perf() *PathPerf { return dp.perf }
