package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"
)

// This file is the composable scenario layer: a schedulable timeline of
// typed events — demand distortions, topology changes, and the E11
// fault families — applied and reverted by one engine off the shared
// simulation clock. Experiments and popsim attach an EventEngine and
// call Advance before every dataplane tick; everything the engine does
// goes through the same hooks a hand-written experiment would use
// (DemandModel modifiers, Topology capacity, PoP session/fault calls,
// LossySink scripting), so scripted and composed scenarios exercise
// identical code paths.

// EventKind names one event family.
type EventKind string

const (
	// --- demand events (drive DemandModel) ---

	// EventFlashCrowd multiplies demand of every prefix originated by
	// the target AS by Magnitude for the duration (the paper's flash
	// crowd: load shifts faster than BGP reacts).
	EventFlashCrowd EventKind = "flash-crowd"
	// EventLiveEvent is a PoP-wide diurnal distortion: total demand
	// ramps up to ×Magnitude at the window midpoint and back down (a
	// live broadcast bending the usual curve).
	EventLiveEvent EventKind = "live-event"
	// EventSurge is a DDoS-like spike: one prefix's demand multiplied
	// by Magnitude, typically large and short.
	EventSurge EventKind = "ddos-surge"
	// EventDemandShift is a cross-PoP load shift seen from one PoP: the
	// whole PoP's demand steps to ×Magnitude for the duration (square
	// pulse, no ramp). Magnitude < 1 models a region loss draining users
	// away; Magnitude > 1 models an anycast re-homing (or a neighboring
	// PoP's failure) dumping its users here. Fleet experiments attach a
	// conserving pair of these — the sender's loss equals the receivers'
	// gain — to model demand moving between PoPs.
	EventDemandShift EventKind = "demand-shift"

	// --- topology events (drive Topology / PoP sessions) ---

	// EventDepeer kills the target peer's BGP session (the router
	// withdraws everything learned from it); the session re-establishes
	// and re-announces when the event ends. Duration 0 depeers
	// permanently.
	EventDepeer EventKind = "depeer"
	// EventDrain is a maintenance drain: the target interface's
	// capacity drops to Magnitude× its base (default 0.05) so the
	// controller must steer traffic off it, then restores.
	EventDrain EventKind = "drain"
	// EventBrownout degrades the target interface's capacity to
	// Magnitude× its base (default 0.5) — a partial failure, e.g. one
	// member of a LAG dying.
	EventBrownout EventKind = "brownout"

	// --- path performance events (drive the PathPerf overlay) ---

	// EventPathRTT inflates the RTT of every path via the target peer by
	// Magnitude milliseconds for the duration — a remote impairment the
	// performance-aware optimizer should route around.
	EventPathRTT EventKind = "path-rtt"
	// EventLossyPath makes every path via the target peer lose a
	// Magnitude fraction of its traffic for the duration — a lossy
	// alternate the optimizer must keep weighted demand off.
	EventLossyPath EventKind = "lossy-path"

	// --- fault events (the E11 families, schedulable) ---

	// EventBMPKill severs the target router's BMP stream and refuses
	// redials until the event ends.
	EventBMPKill EventKind = "bmp-kill"
	// EventIBGPReset flaps the controller's iBGP session toward the
	// target router once (instantaneous; Duration ignored).
	EventIBGPReset EventKind = "ibgp-reset"
	// EventSFlowLoss drops sFlow datagrams with probability Magnitude
	// for the duration; Magnitude >= 1 is a total blackout.
	EventSFlowLoss EventKind = "sflow-loss"
)

// Event is one scheduled scenario event. At is the offset from the
// timeline start; exactly which target field matters depends on Kind.
type Event struct {
	// Kind selects the event family.
	Kind EventKind
	// At is when the event begins, as an offset from the timeline
	// start.
	At time.Duration
	// Duration is how long the event holds before the engine reverts
	// it. Zero means instantaneous for ibgp-reset and permanent for
	// depeer; every other kind requires a positive duration.
	Duration time.Duration
	// Magnitude is the kind-specific intensity: demand multiplier
	// (flash-crowd, live-event, ddos-surge), capacity scale in (0,1]
	// (drain, brownout), loss probability (sflow-loss, lossy-path), or
	// added milliseconds (path-rtt).
	Magnitude float64
	// Prefix targets ddos-surge.
	Prefix netip.Prefix
	// AS targets flash-crowd.
	AS uint32
	// Peer names the depeer / path-rtt / lossy-path target.
	Peer string
	// Interface targets drain / brownout.
	Interface int
	// Router targets bmp-kill / ibgp-reset.
	Router string
}

// End returns the event's end offset (equal to At for instantaneous or
// permanent events).
func (e Event) End() time.Duration {
	if e.Duration <= 0 {
		return e.At
	}
	return e.At + e.Duration
}

// String renders the event compactly for timelines and violation
// reports.
func (e Event) String() string {
	var target string
	switch e.Kind {
	case EventFlashCrowd:
		target = fmt.Sprintf("AS%d", e.AS)
	case EventSurge:
		target = e.Prefix.String()
	case EventLiveEvent, EventDemandShift:
		target = "pop-wide"
	case EventDepeer, EventPathRTT, EventLossyPath:
		target = e.Peer
	case EventDrain, EventBrownout:
		target = fmt.Sprintf("if%d", e.Interface)
	case EventBMPKill, EventIBGPReset:
		target = e.Router
	case EventSFlowLoss:
		target = "collector"
	}
	s := fmt.Sprintf("%s@%s %s", e.Kind, e.At, target)
	if e.Duration > 0 {
		s += fmt.Sprintf(" for %s", e.Duration)
	}
	if e.Magnitude != 0 {
		s += fmt.Sprintf(" x%.2f", e.Magnitude)
	}
	return s
}

// FormatTimeline renders a schedule one event per line, sorted by start
// time — the replay artifact attached to soak violations.
func FormatTimeline(events []Event) string {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].At < sorted[b].At })
	var b strings.Builder
	for i, e := range sorted {
		fmt.Fprintf(&b, "  [%02d] %s\n", i, e.String())
	}
	return b.String()
}

// EventEngineConfig wires an engine to the simulation it drives.
type EventEngineConfig struct {
	// Start is the timeline zero (usually the simulation start time).
	Start time.Time
	// Events is the schedule; order does not matter.
	Events []Event
	// PoP is the live PoP the topology and fault events act on.
	// Required.
	PoP *PoP
	// Demand receives demand modifiers. Required when the schedule has
	// demand events.
	Demand *DemandModel
	// Loss receives sflow-loss scripting. Required when the schedule
	// has sflow-loss events.
	Loss *LossySink
	// OnCapacity, when set, mirrors every effective capacity change
	// (drain/brownout apply and revert) — the experiment harness uses
	// it to reconcile the controller's inventory, the way production
	// Edge Fabric learns capacity changes from SNMP.
	OnCapacity func(ifID int, bps float64)
	// Logf, when set, receives one line per apply/revert transition.
	Logf func(format string, args ...any)
}

// transition is one apply or revert step on the unified timeline.
type transition struct {
	at     time.Duration
	revert bool
	idx    int // index into engine.events
}

// EventEngine schedules a validated event timeline against a running
// simulation. It is not safe for concurrent use: Advance must be called
// from the goroutine that ticks the dataplane (events and ticks share
// the virtual clock).
type EventEngine struct {
	cfg    EventEngineConfig
	events []Event
	trans  []transition
	next   int

	peerAddr map[string]netip.Addr // depeer target name -> session addr
	baseCap  map[int]float64       // interface -> capacity before any event
	capScale map[int][]float64     // interface -> active capacity scales
	bmpKills map[string]int        // router -> active kill count
	lossRate []float64             // active loss rates
	mods     map[int]*DemandMod    // event idx -> installed demand modifier
	// pathRTT / pathLoss hold the active impairments per peer address;
	// overlapping events compose (inflations sum, worst loss wins) and
	// unwind in any order, mirroring capScale.
	pathRTT  map[netip.Addr][]float64
	pathLoss map[netip.Addr][]float64
	active   int
}

// NewEventEngine validates the schedule against the PoP's topology and
// returns an engine ready to Advance. Validation failures name the
// offending event and target so hand-written timelines fail loudly.
func NewEventEngine(cfg EventEngineConfig) (*EventEngine, error) {
	if cfg.PoP == nil {
		return nil, fmt.Errorf("netsim: event engine needs a PoP")
	}
	if cfg.Start.IsZero() {
		cfg.Start = cfg.PoP.cfg.Clock.Now()
	}
	e := &EventEngine{
		cfg:      cfg,
		events:   append([]Event(nil), cfg.Events...),
		peerAddr: make(map[string]netip.Addr),
		baseCap:  make(map[int]float64),
		capScale: make(map[int][]float64),
		bmpKills: make(map[string]int),
		mods:     make(map[int]*DemandMod),
		pathRTT:  make(map[netip.Addr][]float64),
		pathLoss: make(map[netip.Addr][]float64),
	}
	topo := cfg.PoP.Topo
	for i := range e.events {
		ev := &e.events[i]
		if ev.At < 0 {
			return nil, fmt.Errorf("netsim: event %d (%s): negative start offset %s", i, ev.Kind, ev.At)
		}
		switch ev.Kind {
		case EventFlashCrowd:
			if cfg.Demand == nil {
				return nil, fmt.Errorf("netsim: event %d (%s): engine has no demand model", i, ev.Kind)
			}
			if ev.Magnitude <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): magnitude must be positive", i, ev.Kind)
			}
			if ev.Duration <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): duration required", i, ev.Kind)
			}
			if ev.AS == 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): target AS required", i, ev.Kind)
			}
		case EventLiveEvent, EventDemandShift:
			if cfg.Demand == nil {
				return nil, fmt.Errorf("netsim: event %d (%s): engine has no demand model", i, ev.Kind)
			}
			if ev.Magnitude <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): magnitude must be positive", i, ev.Kind)
			}
			if ev.Duration <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): duration required", i, ev.Kind)
			}
		case EventSurge:
			if cfg.Demand == nil {
				return nil, fmt.Errorf("netsim: event %d (%s): engine has no demand model", i, ev.Kind)
			}
			if ev.Magnitude <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): magnitude must be positive", i, ev.Kind)
			}
			if ev.Duration <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): duration required", i, ev.Kind)
			}
			if !ev.Prefix.IsValid() {
				return nil, fmt.Errorf("netsim: event %d (%s): target prefix required", i, ev.Kind)
			}
		case EventDepeer:
			var spec *Peer
			for j := range topo.Peers {
				if topo.Peers[j].Name == ev.Peer {
					spec = &topo.Peers[j]
					break
				}
			}
			if spec == nil {
				return nil, fmt.Errorf("netsim: event %d (%s): unknown peer %q", i, ev.Kind, ev.Peer)
			}
			e.peerAddr[ev.Peer] = spec.Addr
		case EventPathRTT, EventLossyPath:
			var spec *Peer
			for j := range topo.Peers {
				if topo.Peers[j].Name == ev.Peer {
					spec = &topo.Peers[j]
					break
				}
			}
			if spec == nil {
				return nil, fmt.Errorf("netsim: event %d (%s): unknown peer %q", i, ev.Kind, ev.Peer)
			}
			if ev.Magnitude <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): magnitude must be positive", i, ev.Kind)
			}
			if ev.Kind == EventLossyPath && ev.Magnitude > 1 {
				return nil, fmt.Errorf("netsim: event %d (%s): loss fraction %.2f outside (0,1]", i, ev.Kind, ev.Magnitude)
			}
			if ev.Duration <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): duration required", i, ev.Kind)
			}
			e.peerAddr[ev.Peer] = spec.Addr
		case EventDrain, EventBrownout:
			ifc := topo.InterfaceByID(ev.Interface)
			if ifc == nil {
				return nil, fmt.Errorf("netsim: event %d (%s): unknown interface %d", i, ev.Kind, ev.Interface)
			}
			if ev.Magnitude == 0 {
				if ev.Kind == EventDrain {
					ev.Magnitude = 0.05
				} else {
					ev.Magnitude = 0.5
				}
			}
			if ev.Magnitude <= 0 || ev.Magnitude > 1 {
				return nil, fmt.Errorf("netsim: event %d (%s): capacity scale %.2f outside (0,1]", i, ev.Kind, ev.Magnitude)
			}
			if ev.Duration <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): duration required", i, ev.Kind)
			}
			if _, ok := e.baseCap[ev.Interface]; !ok {
				e.baseCap[ev.Interface] = ifc.CapacityBps
			}
		case EventBMPKill:
			if topo.RouterByName(ev.Router) == nil {
				return nil, fmt.Errorf("netsim: event %d (%s): unknown router %q", i, ev.Kind, ev.Router)
			}
			if ev.Duration <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): duration required", i, ev.Kind)
			}
		case EventIBGPReset:
			if topo.RouterByName(ev.Router) == nil {
				return nil, fmt.Errorf("netsim: event %d (%s): unknown router %q", i, ev.Kind, ev.Router)
			}
			ev.Duration = 0 // instantaneous: the flap has no window to revert
		case EventSFlowLoss:
			if cfg.Loss == nil {
				return nil, fmt.Errorf("netsim: event %d (%s): engine has no lossy sink", i, ev.Kind)
			}
			if ev.Magnitude <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): loss rate must be positive", i, ev.Kind)
			}
			if ev.Duration <= 0 {
				return nil, fmt.Errorf("netsim: event %d (%s): duration required", i, ev.Kind)
			}
		default:
			return nil, fmt.Errorf("netsim: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	// Unified transition list: applies and reverts interleaved in time
	// order, so an event ending at T is reverted before one starting at
	// T is applied.
	for i := range e.events {
		ev := &e.events[i]
		e.trans = append(e.trans, transition{at: ev.At, revert: false, idx: i})
		if ev.Duration > 0 {
			e.trans = append(e.trans, transition{at: ev.End(), revert: true, idx: i})
		}
	}
	sort.SliceStable(e.trans, func(a, b int) bool {
		if e.trans[a].at != e.trans[b].at {
			return e.trans[a].at < e.trans[b].at
		}
		// Reverts first at equal timestamps.
		return e.trans[a].revert && !e.trans[b].revert
	})
	return e, nil
}

// Advance applies every transition due at or before now and returns how
// many fired (the soak harness uses the count to open churn grace
// windows around event boundaries).
func (e *EventEngine) Advance(now time.Time) int {
	offset := now.Sub(e.cfg.Start)
	fired := 0
	for e.next < len(e.trans) && e.trans[e.next].at <= offset {
		tr := e.trans[e.next]
		e.next++
		fired++
		if tr.revert {
			e.revert(tr.idx)
		} else {
			e.apply(tr.idx)
		}
	}
	return fired
}

// Done reports that every transition has fired.
func (e *EventEngine) Done() bool { return e.next >= len(e.trans) }

// Active returns how many events are currently in effect (applied, not
// yet reverted; instantaneous and permanent events never count).
func (e *EventEngine) Active() int { return e.active }

// Timeline returns the engine's schedule sorted by start offset.
func (e *EventEngine) Timeline() []Event {
	out := append([]Event(nil), e.events...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

func (e *EventEngine) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

func (e *EventEngine) apply(idx int) {
	ev := &e.events[idx]
	e.logf("event: apply %s", ev)
	switch ev.Kind {
	case EventFlashCrowd, EventLiveEvent, EventSurge, EventDemandShift:
		mod := DemandMod{
			Start:      e.cfg.Start.Add(ev.At),
			End:        e.cfg.Start.Add(ev.End()),
			Multiplier: ev.Magnitude,
		}
		switch ev.Kind {
		case EventFlashCrowd:
			mod.AS = ev.AS
		case EventSurge:
			mod.Prefix = ev.Prefix
		case EventLiveEvent:
			mod.Ramp = true
			// EventDemandShift: PoP-wide square pulse — no target, no
			// ramp; re-homed users land all at once.
		}
		e.mods[idx] = e.cfg.Demand.AddMod(mod)
		e.active++
	case EventDepeer:
		if err := e.cfg.PoP.PeerSessionDown(e.peerAddr[ev.Peer]); err != nil {
			e.logf("event: depeer %s: %v", ev.Peer, err)
		}
		if ev.Duration > 0 {
			e.active++
		}
	case EventPathRTT:
		addr := e.peerAddr[ev.Peer]
		e.pathRTT[addr] = append(e.pathRTT[addr], ev.Magnitude)
		e.applyPathPerf(addr)
		e.active++
	case EventLossyPath:
		addr := e.peerAddr[ev.Peer]
		e.pathLoss[addr] = append(e.pathLoss[addr], ev.Magnitude)
		e.applyPathPerf(addr)
		e.active++
	case EventDrain, EventBrownout:
		e.capScale[ev.Interface] = append(e.capScale[ev.Interface], ev.Magnitude)
		e.applyCapacity(ev.Interface)
		e.active++
	case EventBMPKill:
		if e.bmpKills[ev.Router] == 0 {
			e.cfg.PoP.KillBMP(ev.Router)
		}
		e.bmpKills[ev.Router]++
		e.active++
	case EventIBGPReset:
		e.cfg.PoP.ResetInjection(ev.Router)
	case EventSFlowLoss:
		e.lossRate = append(e.lossRate, ev.Magnitude)
		e.applyLoss()
		e.active++
	}
}

func (e *EventEngine) revert(idx int) {
	ev := &e.events[idx]
	e.logf("event: revert %s", ev)
	switch ev.Kind {
	case EventFlashCrowd, EventLiveEvent, EventSurge, EventDemandShift:
		if mod := e.mods[idx]; mod != nil {
			e.cfg.Demand.RemoveMod(mod)
			delete(e.mods, idx)
		}
	case EventDepeer:
		if err := e.cfg.PoP.PeerSessionUp(e.peerAddr[ev.Peer]); err != nil {
			e.logf("event: re-peer %s: %v", ev.Peer, err)
		}
	case EventPathRTT:
		addr := e.peerAddr[ev.Peer]
		e.pathRTT[addr] = removeOne(e.pathRTT[addr], ev.Magnitude)
		e.applyPathPerf(addr)
	case EventLossyPath:
		addr := e.peerAddr[ev.Peer]
		e.pathLoss[addr] = removeOne(e.pathLoss[addr], ev.Magnitude)
		e.applyPathPerf(addr)
	case EventDrain, EventBrownout:
		scales := e.capScale[ev.Interface]
		for i, s := range scales {
			if s == ev.Magnitude {
				e.capScale[ev.Interface] = append(scales[:i], scales[i+1:]...)
				break
			}
		}
		e.applyCapacity(ev.Interface)
	case EventBMPKill:
		e.bmpKills[ev.Router]--
		if e.bmpKills[ev.Router] == 0 {
			e.cfg.PoP.RestoreBMP(ev.Router)
		}
	case EventSFlowLoss:
		for i, r := range e.lossRate {
			if r == ev.Magnitude {
				e.lossRate = append(e.lossRate[:i], e.lossRate[i+1:]...)
				break
			}
		}
		e.applyLoss()
	}
	e.active--
}

// removeOne deletes the first occurrence of v from s.
func removeOne(s []float64, v float64) []float64 {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// applyPathPerf recomputes a peer's effective impairment from the active
// events: RTT inflations sum (two remote incidents stack), the worst
// loss fraction wins (loss probabilities don't add linearly and the
// worst event dominates what the transport sees).
func (e *EventEngine) applyPathPerf(addr netip.Addr) {
	perf := e.cfg.PoP.Plane.Perf()
	var ms float64
	for _, v := range e.pathRTT[addr] {
		ms += v
	}
	perf.SetRTTInflation(addr, ms)
	worst := 0.0
	for _, v := range e.pathLoss[addr] {
		if v > worst {
			worst = v
		}
	}
	perf.SetPathLoss(addr, worst)
}

// applyCapacity recomputes an interface's effective capacity as its base
// times the product of every active scale event, so overlapping drains
// and brownouts compose and unwind cleanly in any order.
func (e *EventEngine) applyCapacity(ifID int) {
	capBps := e.baseCap[ifID]
	for _, s := range e.capScale[ifID] {
		capBps *= s
	}
	if err := e.cfg.PoP.Topo.SetInterfaceCapacity(ifID, capBps); err != nil {
		e.logf("event: capacity if%d: %v", ifID, err)
		return
	}
	if e.cfg.OnCapacity != nil {
		e.cfg.OnCapacity(ifID, capBps)
	}
}

// applyLoss sets the sink to the worst active loss event (a total
// blackout shadows partial loss).
func (e *EventEngine) applyLoss() {
	worst := 0.0
	for _, r := range e.lossRate {
		if r > worst {
			worst = r
		}
	}
	if worst >= 1 {
		e.cfg.Loss.Kill()
		return
	}
	e.cfg.Loss.Restore()
	e.cfg.Loss.SetLossRate(worst)
}
