package netsim

import (
	"fmt"
	"net/netip"

	"edgefabric/internal/rib"
)

// Interface is one egress port of a peering router: a PNI to a private
// peer, a shared IXP fabric port, or a transit attachment. Capacity is
// the quantity Edge Fabric protects.
type Interface struct {
	// ID is the PoP-unique interface index (also used in sFlow records
	// and rib.Route.EgressIF).
	ID int
	// Router is the name of the owning peering router.
	Router string
	// Name is a human-readable port name, e.g. "pr1:pni-as65010".
	Name string
	// CapacityBps is the egress capacity in bits per second.
	CapacityBps float64
}

// Peer is one BGP neighbor of the PoP: who they are, which interface
// their traffic leaves through, what they announce, and the base
// propagation latency of paths through them.
type Peer struct {
	// Name is a unique label, e.g. "as65010-pni".
	Name string
	// AS is the neighbor's AS number.
	AS uint32
	// Addr is the neighbor address (session and route identity).
	Addr netip.Addr
	// Class is the Edge Fabric peering tier.
	Class rib.PeerClass
	// InterfaceID is the egress interface traffic to this neighbor
	// uses. Public peers and the route server share their IXP port.
	InterfaceID int
	// Router is the peering router terminating the session.
	Router string
	// Announces lists the prefixes this neighbor announces, with the
	// AS path it presents.
	Announces []Announcement
	// BaseRTTMS is the propagation RTT in milliseconds for paths via
	// this neighbor before per-prefix skew and congestion are applied.
	BaseRTTMS float64
}

// Announcement is one prefix a peer announces with its AS path.
type Announcement struct {
	Prefix netip.Prefix
	// Path is the AS path the neighbor presents (neighbor AS first).
	Path []uint32
	// MED, when nonzero, is attached to the announcement.
	MED uint32
}

// Router is one peering router of the PoP.
type Router struct {
	// Name is unique within the PoP, e.g. "pr1".
	Name string
	// RouterID is the BGP identifier.
	RouterID netip.Addr
}

// Topology describes a PoP: routers, interfaces, and neighbors.
type Topology struct {
	// Name labels the PoP, e.g. "pop-gru".
	Name string
	// LocalAS is the content provider's AS.
	LocalAS uint32
	// Routers are the peering routers.
	Routers []Router
	// Interfaces are the egress ports.
	Interfaces []Interface
	// Peers are the BGP neighbors.
	Peers []Peer

	peerByAddr  map[netip.Addr]*Peer
	ifByID      map[int]*Interface
	routerByNam map[string]*Router
}

// Validate checks referential integrity and builds the lookup indexes.
// It must be called (directly or via NewPoP) before the accessors.
func (t *Topology) Validate() error {
	if t.LocalAS == 0 {
		return fmt.Errorf("netsim: topology %q: LocalAS required", t.Name)
	}
	if len(t.Routers) == 0 {
		return fmt.Errorf("netsim: topology %q: at least one router required", t.Name)
	}
	t.routerByNam = make(map[string]*Router, len(t.Routers))
	for i := range t.Routers {
		r := &t.Routers[i]
		if _, dup := t.routerByNam[r.Name]; dup {
			return fmt.Errorf("netsim: duplicate router %q", r.Name)
		}
		if !r.RouterID.Is4() {
			return fmt.Errorf("netsim: router %q: RouterID must be IPv4", r.Name)
		}
		t.routerByNam[r.Name] = r
	}
	t.ifByID = make(map[int]*Interface, len(t.Interfaces))
	for i := range t.Interfaces {
		ifc := &t.Interfaces[i]
		if _, dup := t.ifByID[ifc.ID]; dup {
			return fmt.Errorf("netsim: duplicate interface ID %d", ifc.ID)
		}
		if _, ok := t.routerByNam[ifc.Router]; !ok {
			return fmt.Errorf("netsim: interface %q references unknown router %q", ifc.Name, ifc.Router)
		}
		if ifc.CapacityBps <= 0 {
			return fmt.Errorf("netsim: interface %q: capacity must be positive", ifc.Name)
		}
		t.ifByID[ifc.ID] = ifc
	}
	t.peerByAddr = make(map[netip.Addr]*Peer, len(t.Peers))
	for i := range t.Peers {
		p := &t.Peers[i]
		if !p.Addr.IsValid() {
			return fmt.Errorf("netsim: peer %q: invalid address", p.Name)
		}
		if _, dup := t.peerByAddr[p.Addr]; dup {
			return fmt.Errorf("netsim: duplicate peer address %s", p.Addr)
		}
		if _, ok := t.ifByID[p.InterfaceID]; !ok {
			return fmt.Errorf("netsim: peer %q references unknown interface %d", p.Name, p.InterfaceID)
		}
		if _, ok := t.routerByNam[p.Router]; !ok {
			return fmt.Errorf("netsim: peer %q references unknown router %q", p.Name, p.Router)
		}
		if p.AS == 0 || p.AS == t.LocalAS {
			return fmt.Errorf("netsim: peer %q: bad AS %d", p.Name, p.AS)
		}
		for _, a := range p.Announces {
			if !a.Prefix.IsValid() {
				return fmt.Errorf("netsim: peer %q announces invalid prefix", p.Name)
			}
			if len(a.Path) == 0 {
				return fmt.Errorf("netsim: peer %q: empty announcement path", p.Name)
			}
			// Route servers are transparent: their announcements carry
			// the member AS path, not the route server's AS.
			if p.Class != rib.ClassRouteServer && a.Path[0] != p.AS {
				return fmt.Errorf("netsim: peer %q: announcement path must start with its AS", p.Name)
			}
		}
		t.peerByAddr[p.Addr] = p
	}
	// Register the derived IPv6 next-hop alias of each v4-addressed
	// peer, so that routes announced via MP_REACH resolve back to their
	// session peer (see v6NextHop).
	for i := range t.Peers {
		p := &t.Peers[i]
		if alias := v6NextHop(p.Addr); alias != p.Addr {
			if _, taken := t.peerByAddr[alias]; !taken {
				t.peerByAddr[alias] = p
			}
		}
	}
	return nil
}

// SetInterfaceCapacity mutates an interface's capacity at runtime —
// the event engine's drain/brownout hook. Callers must serialize with
// dataplane ticks (the engine runs on the tick goroutine).
func (t *Topology) SetInterfaceCapacity(id int, bps float64) error {
	ifc := t.ifByID[id]
	if ifc == nil {
		return fmt.Errorf("netsim: unknown interface %d", id)
	}
	if bps <= 0 {
		return fmt.Errorf("netsim: interface %d: capacity must be positive", id)
	}
	ifc.CapacityBps = bps
	return nil
}

// PeerByAddr returns the peer with the given address, or nil.
func (t *Topology) PeerByAddr(a netip.Addr) *Peer { return t.peerByAddr[a] }

// InterfaceByID returns the interface with the given ID, or nil.
func (t *Topology) InterfaceByID(id int) *Interface { return t.ifByID[id] }

// RouterByName returns the router with the given name, or nil.
func (t *Topology) RouterByName(name string) *Router { return t.routerByNam[name] }

// PeersOnRouter returns the peers terminating on the named router.
func (t *Topology) PeersOnRouter(name string) []*Peer {
	var out []*Peer
	for i := range t.Peers {
		if t.Peers[i].Router == name {
			out = append(out, &t.Peers[i])
		}
	}
	return out
}

// TotalPeerCapacity sums the capacity of interfaces used by non-transit
// peers; TotalTransitCapacity sums transit interfaces. An interface
// shared by both kinds (not produced by the synthesizer) counts toward
// the class of the first peer on it.
func (t *Topology) TotalPeerCapacity() (peerBps, transitBps float64) {
	class := make(map[int]rib.PeerClass)
	for i := range t.Peers {
		p := &t.Peers[i]
		if _, seen := class[p.InterfaceID]; !seen {
			class[p.InterfaceID] = p.Class
		}
	}
	for i := range t.Interfaces {
		ifc := &t.Interfaces[i]
		if c, ok := class[ifc.ID]; ok && c == rib.ClassTransit {
			transitBps += ifc.CapacityBps
		} else if ok {
			peerBps += ifc.CapacityBps
		}
	}
	return peerBps, transitBps
}
