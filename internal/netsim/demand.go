package netsim

import (
	"fmt"
	"hash/fnv"
	"math"
	"net/netip"
	"sync"
	"time"
)

// FlashEvent is a transient demand spike: every prefix originated by AS
// gets its demand multiplied by Multiplier during [Start, Start+Duration).
// Flash crowds are what force Edge Fabric to react between BGP events.
type FlashEvent struct {
	AS         uint32
	Start      time.Time
	Duration   time.Duration
	Multiplier float64
}

// DemandConfig parameterizes the synthetic traffic model.
type DemandConfig struct {
	// PeakBps is the PoP's total egress demand at the diurnal peak.
	PeakBps float64
	// DiurnalAmplitude in [0,1) is the peak-to-trough swing: trough
	// demand is Peak×(1−amplitude). Default 0.5.
	DiurnalAmplitude float64
	// PeakHourUTC is the hour of day demand peaks. Default 20.
	PeakHourUTC float64
	// NoiseSigma is the σ of multiplicative lognormal per-prefix noise
	// re-drawn every NoisePeriod. Default 0.15.
	NoiseSigma float64
	// NoisePeriod is how often noise re-draws. Default 5 minutes.
	NoisePeriod time.Duration
	// Flash lists flash-crowd events.
	Flash []FlashEvent
	// Seed decorrelates noise across scenarios.
	Seed int64
}

func (c *DemandConfig) setDefaults() {
	if c.PeakBps == 0 {
		c.PeakBps = 400e9
	}
	if c.DiurnalAmplitude == 0 {
		c.DiurnalAmplitude = 0.5
	}
	if c.PeakHourUTC == 0 {
		c.PeakHourUTC = 20
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 0.15
	}
	if c.NoisePeriod == 0 {
		c.NoisePeriod = 5 * time.Minute
	}
}

// PrefixInfo carries the static per-prefix facts the demand model and
// the experiments need.
type PrefixInfo struct {
	// Prefix is the user /24 (or /48) this entry describes.
	Prefix netip.Prefix
	// OriginAS is the edge AS originating it.
	OriginAS uint32
	// Weight is the normalized share of PoP demand (sums to 1 across
	// all prefixes).
	Weight float64
	// RepAddr is a representative host address inside the prefix, used
	// for forwarding lookups and sFlow records.
	RepAddr netip.Addr
}

// DemandMod is a runtime demand modifier installed by the event engine:
// every prefix in scope gets its demand multiplied during [Start, End).
// Scope is the most specific non-zero target — Prefix, else AS, else the
// whole PoP. The modifier is self-checking against its window, so the
// engine's apply/revert ordering only controls when it is *visible*, not
// what it computes.
type DemandMod struct {
	Start time.Time
	End   time.Time
	// Prefix scopes the modifier to one prefix when valid.
	Prefix netip.Prefix
	// AS scopes the modifier to one origin AS when non-zero (and Prefix
	// is not set).
	AS uint32
	// Multiplier is the peak demand factor.
	Multiplier float64
	// Ramp selects a triangular shape — the factor rises linearly from 1
	// to Multiplier at the window midpoint and back — instead of a
	// square pulse. Live events bend the curve; DDoS steps on it.
	Ramp bool
}

// factor returns the modifier's multiplier for prefix p at time t
// (1 when out of window or scope).
func (m *DemandMod) factor(p *PrefixInfo, t time.Time) float64 {
	if t.Before(m.Start) || !t.Before(m.End) {
		return 1
	}
	if m.Prefix.IsValid() {
		if p.Prefix != m.Prefix {
			return 1
		}
	} else if m.AS != 0 && p.OriginAS != m.AS {
		return 1
	}
	if !m.Ramp {
		return m.Multiplier
	}
	x := float64(t.Sub(m.Start)) / float64(m.End.Sub(m.Start))
	return 1 + (m.Multiplier-1)*(1-math.Abs(2*x-1))
}

// DemandModel produces per-prefix egress demand over time:
// Zipf-weighted prefix volumes × diurnal curve × lognormal noise ×
// flash-crowd multipliers. All randomness is a pure function of
// (Seed, prefix, time), so replays are deterministic; the only mutable
// state is the event engine's modifier overlay, guarded by modMu.
type DemandModel struct {
	cfg       DemandConfig
	prefixes  []*PrefixInfo
	flashByAS map[uint32][]FlashEvent

	modMu sync.RWMutex
	mods  []*DemandMod
}

// NewDemandModel builds a model over the given prefixes. Weights must be
// normalized (the synthesizer guarantees it; Validate checks loosely).
func NewDemandModel(cfg DemandConfig, prefixes []*PrefixInfo) (*DemandModel, error) {
	cfg.setDefaults()
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("netsim: demand model needs prefixes")
	}
	var sum float64
	for _, p := range prefixes {
		if p.Weight < 0 {
			return nil, fmt.Errorf("netsim: prefix %s has negative weight", p.Prefix)
		}
		sum += p.Weight
	}
	if math.Abs(sum-1) > 0.01 {
		return nil, fmt.Errorf("netsim: prefix weights sum to %.4f, want 1", sum)
	}
	m := &DemandModel{cfg: cfg, prefixes: prefixes, flashByAS: make(map[uint32][]FlashEvent)}
	for _, f := range cfg.Flash {
		m.flashByAS[f.AS] = append(m.flashByAS[f.AS], f)
	}
	return m, nil
}

// Prefixes returns the model's prefix set.
func (m *DemandModel) Prefixes() []*PrefixInfo { return m.prefixes }

// Diurnal returns the time-of-day multiplier in [1−amplitude, 1].
func (m *DemandModel) Diurnal(t time.Time) float64 {
	h := float64(t.Hour()) + float64(t.Minute())/60 + float64(t.Second())/3600
	phase := 2 * math.Pi * (h - m.cfg.PeakHourUTC) / 24
	return 1 - m.cfg.DiurnalAmplitude*0.5*(1-math.Cos(phase))
}

// noise returns the deterministic lognormal noise factor for a prefix in
// the noise period containing t.
func (m *DemandModel) noise(p netip.Prefix, t time.Time) float64 {
	if m.cfg.NoiseSigma == 0 {
		return 1
	}
	epoch := t.UnixNano() / int64(m.cfg.NoisePeriod)
	h := fnv.New64a()
	var buf [8]byte
	putU64(buf[:], uint64(m.cfg.Seed))
	h.Write(buf[:])
	b := p.Addr().As16()
	h.Write(b[:])
	putU64(buf[:], uint64(p.Bits()))
	h.Write(buf[:])
	putU64(buf[:], uint64(epoch))
	h.Write(buf[:])
	// Two uniforms from the hash → one standard normal (Box–Muller).
	v := h.Sum64()
	u1 := float64(v>>11)/float64(1<<53) + 1e-12
	u2 := float64(v&((1<<11)-1))/float64(1<<11) + 1e-12
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	// Lognormal with mean 1: exp(σz − σ²/2).
	s := m.cfg.NoiseSigma
	return math.Exp(s*z - s*s/2)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// flash returns the flash multiplier for origin AS at t.
func (m *DemandModel) flash(as uint32, t time.Time) float64 {
	f := 1.0
	for _, ev := range m.flashByAS[as] {
		if !t.Before(ev.Start) && t.Before(ev.Start.Add(ev.Duration)) {
			f *= ev.Multiplier
		}
	}
	return f
}

// AddMod installs a runtime demand modifier and returns the handle to
// pass to RemoveMod. The event engine owns the lifecycle.
func (m *DemandModel) AddMod(mod DemandMod) *DemandMod {
	h := &mod
	m.modMu.Lock()
	m.mods = append(m.mods, h)
	m.modMu.Unlock()
	return h
}

// RemoveMod uninstalls a modifier previously returned by AddMod.
func (m *DemandModel) RemoveMod(h *DemandMod) {
	m.modMu.Lock()
	for i, mod := range m.mods {
		if mod == h {
			m.mods = append(m.mods[:i], m.mods[i+1:]...)
			break
		}
	}
	m.modMu.Unlock()
}

// modFactor returns the product of all active modifier factors for p at
// t. The empty-overlay fast path keeps steady-state Rate calls cheap.
func (m *DemandModel) modFactor(p *PrefixInfo, t time.Time) float64 {
	m.modMu.RLock()
	defer m.modMu.RUnlock()
	if len(m.mods) == 0 {
		return 1
	}
	f := 1.0
	for _, mod := range m.mods {
		f *= mod.factor(p, t)
	}
	return f
}

// Rate returns prefix p's demand in bits per second at time t.
func (m *DemandModel) Rate(p *PrefixInfo, t time.Time) float64 {
	return m.cfg.PeakBps * p.Weight * m.Diurnal(t) * m.noise(p.Prefix, t) *
		m.flash(p.OriginAS, t) * m.modFactor(p, t)
}

// Total returns the PoP's total demand at t (sum over prefixes).
func (m *DemandModel) Total(t time.Time) float64 {
	var sum float64
	for _, p := range m.prefixes {
		sum += m.Rate(p, t)
	}
	return sum
}

// ZipfWeights returns n weights following a Zipf distribution with
// exponent s, normalized to sum to 1; rank 0 is the heaviest. The Edge
// Fabric paper's demand concentrates this way: a small number of user
// networks carry most traffic.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}
