package netsim

import (
	"math"
	"net/netip"
	"sync"
)

// PathPerfConfig parameterizes the path performance model.
type PathPerfConfig struct {
	// Seed decorrelates the per-(prefix, peer) skews.
	Seed int64
	// GeoSkewMS is the maximum per-prefix distance offset added to all
	// of a prefix's paths (destination remoteness). Default 40.
	GeoSkewMS float64
	// PathSkewMS is the maximum per-(prefix, peer) skew differentiating
	// paths to the same prefix. Default 12.
	PathSkewMS float64
	// AnomalyProb is the probability that a prefix's best-class path is
	// remotely impaired, making an alternate (often transit) faster by
	// a clear margin — the §6 phenomenon performance-aware routing
	// detects. Default 0.06.
	AnomalyProb float64
	// AnomalyExtraMS is the impairment range [min,max) added to an
	// anomalous prefix's preferred-class paths. Defaults 25 and 80.
	AnomalyExtraMinMS, AnomalyExtraMaxMS float64
}

func (c *PathPerfConfig) setDefaults() {
	if c.GeoSkewMS == 0 {
		c.GeoSkewMS = 40
	}
	if c.PathSkewMS == 0 {
		c.PathSkewMS = 12
	}
	if c.AnomalyProb == 0 {
		c.AnomalyProb = 0.06
	}
	if c.AnomalyExtraMinMS == 0 {
		c.AnomalyExtraMinMS = 25
	}
	if c.AnomalyExtraMaxMS == 0 {
		c.AnomalyExtraMaxMS = 80
	}
}

// PathPerf models the propagation RTT of each (prefix, peer) path,
// before congestion. The base model is a pure function of the seed, so
// the whole simulation sees one consistent Internet; on top of it sits a
// mutable per-peer impairment overlay the scenario event layer scripts
// (path-rtt inflation and lossy alternates) to exercise the
// performance-aware optimizer.
type PathPerf struct {
	cfg PathPerfConfig

	mu sync.RWMutex
	// extraMS is active RTT inflation per peer address (summed across
	// overlapping events by the engine before it calls SetRTTInflation).
	extraMS map[netip.Addr]float64
	// lossFrac is the scripted transport-loss fraction per peer address.
	lossFrac map[netip.Addr]float64
}

// NewPathPerf returns a model for cfg.
func NewPathPerf(cfg PathPerfConfig) *PathPerf {
	cfg.setDefaults()
	return &PathPerf{
		cfg:      cfg,
		extraMS:  make(map[netip.Addr]float64),
		lossFrac: make(map[netip.Addr]float64),
	}
}

// SetRTTInflation sets the scripted RTT inflation (milliseconds) on
// every path via the given peer; zero clears it.
func (pp *PathPerf) SetRTTInflation(peer netip.Addr, ms float64) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if ms <= 0 {
		delete(pp.extraMS, peer)
		return
	}
	pp.extraMS[peer] = ms
}

// SetPathLoss sets the scripted transport-loss fraction on every path
// via the given peer; zero clears it.
func (pp *PathPerf) SetPathLoss(peer netip.Addr, frac float64) {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if frac <= 0 {
		delete(pp.lossFrac, peer)
		return
	}
	if frac > 1 {
		frac = 1
	}
	pp.lossFrac[peer] = frac
}

// rttInflation returns the active scripted inflation for a peer.
func (pp *PathPerf) rttInflation(peer netip.Addr) float64 {
	pp.mu.RLock()
	defer pp.mu.RUnlock()
	return pp.extraMS[peer]
}

// PathLoss returns the active scripted loss fraction for a peer.
func (pp *PathPerf) PathLoss(peer netip.Addr) float64 {
	pp.mu.RLock()
	defer pp.mu.RUnlock()
	return pp.lossFrac[peer]
}

// unit maps a hash to [0,1).
func unitHash(seed int64, p netip.Prefix, salt uint64) float64 {
	b := p.Addr().As16()
	var key uint64
	for i := 0; i < 8; i++ {
		key = key<<8 | uint64(b[i]^b[i+8])
	}
	v := hash2(seed, key^uint64(p.Bits())<<56, salt)
	return float64(v>>11) / float64(1<<53)
}

// geoSkew is the per-prefix remoteness offset shared by all paths.
func (pp *PathPerf) geoSkew(p netip.Prefix) float64 {
	return unitHash(pp.cfg.Seed, p, 0x9e01) * pp.cfg.GeoSkewMS
}

// Anomalous reports whether the prefix's preferred-class paths are
// remotely impaired.
func (pp *PathPerf) Anomalous(p netip.Prefix) bool {
	return unitHash(pp.cfg.Seed, p, 0x517a) < pp.cfg.AnomalyProb
}

// anomalyExtra is the impairment magnitude for an anomalous prefix.
func (pp *PathPerf) anomalyExtra(p netip.Prefix) float64 {
	u := unitHash(pp.cfg.Seed, p, 0xc0de)
	return pp.cfg.AnomalyExtraMinMS + u*(pp.cfg.AnomalyExtraMaxMS-pp.cfg.AnomalyExtraMinMS)
}

// BaseRTT returns the uncongested RTT in milliseconds for reaching
// prefix via peer. bestClass is the best (lowest) peer class among the
// routes available for the prefix; anomalies impair paths of that class
// so that a worse-class path can win.
func (pp *PathPerf) BaseRTT(p netip.Prefix, peer *Peer, bestClass uint8) float64 {
	rtt := peer.BaseRTTMS + pp.geoSkew(p) +
		unitHash(pp.cfg.Seed^int64(peer.AS)<<16, p, 0xabcd)*pp.cfg.PathSkewMS
	if pp.Anomalous(p) && uint8(peer.Class) == bestClass {
		rtt += pp.anomalyExtra(p)
	}
	return rtt + pp.rttInflation(peer.Addr)
}

// CongestionDelay returns the added queueing delay in milliseconds for
// an egress interface at the given utilization (load/capacity). It is
// negligible below 70 % utilization and grows steeply toward saturation,
// a standard M/M/1-flavored knee clipped for stability.
func CongestionDelay(utilization float64) float64 {
	if utilization <= 0.7 {
		return 0
	}
	if utilization >= 1 {
		return 50
	}
	x := (utilization - 0.7) / 0.3
	return 50 * math.Pow(x, 3)
}

// LossFraction returns the fraction of offered load dropped at an
// interface with the given utilization: zero below saturation, and the
// excess fraction above it (tail drop of an unbuffered bottleneck).
func LossFraction(utilization float64) float64 {
	if utilization <= 1 {
		return 0
	}
	return 1 - 1/utilization
}
