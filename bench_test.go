// Package edgefabric_bench holds the top-level benchmark harness: one
// testing.B benchmark per experiment in EXPERIMENTS.md (E1–E10), each
// regenerating its figure/table on a reduced-scale scenario and
// reporting the headline metric via b.ReportMetric, plus end-to-end
// pipeline benchmarks. Protocol- and structure-level micro-benchmarks
// live next to their packages (wire, bgp, bmp, sflow, rib, core).
//
// Run with:
//
//	go test -bench=. -benchmem
package edgefabric_bench

import (
	"context"
	"testing"
	"time"

	"edgefabric/internal/core"
	"edgefabric/internal/exp"
	"edgefabric/internal/netsim"
	"edgefabric/internal/rib"
)

// benchConfig is the reduced-scale scenario shared by the experiment
// benchmarks: small enough to iterate, constrained enough to exercise
// the allocator.
func benchConfig(controller bool) exp.HarnessConfig {
	return exp.HarnessConfig{
		Synth: netsim.SynthConfig{
			Seed:               3,
			Prefixes:           400,
			EdgeASes:           60,
			PrivatePeers:       5,
			PublicPeers:        10,
			RouteServerMembers: 15,
			PeakBps:            150e9,
			PNIHeadroomMin:     0.6,
			PNIHeadroomMax:     0.9,
		},
		Demand:            netsim.DemandConfig{NoiseSigma: 0.05},
		Allocator:         core.AllocatorConfig{Threshold: 0.95},
		ControllerEnabled: controller,
		Start:             time.Date(2017, 3, 1, 20, 0, 0, 0, time.UTC),
	}
}

func mustHarness(b *testing.B, cfg exp.HarnessConfig) *exp.Harness {
	b.Helper()
	h, err := exp.NewHarness(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(h.Close)
	return h
}

func BenchmarkE1RouteDiversity(b *testing.B) {
	h := mustHarness(b, benchConfig(false))
	b.ResetTimer()
	var res *exp.DiversityResult
	for i := 0; i < b.N; i++ {
		res = exp.E1RouteDiversity(h)
	}
	b.ReportMetric(res.WeightedAtLeast[3]*100, "%traffic>=3routes")
}

func BenchmarkE2ProjectedOverload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := mustHarness(b, benchConfig(false))
		b.StartTimer()
		res := exp.E2ProjectedOverload(h, 30*time.Minute)
		b.ReportMetric(res.FracOver100*100, "%ifaces>100%")
		b.StopTimer()
		h.Close()
		b.StartTimer()
	}
}

func BenchmarkE3PolicyTiers(b *testing.B) {
	h := mustHarness(b, benchConfig(false))
	b.ResetTimer()
	var res *exp.TierShareResult
	for i := 0; i < b.N; i++ {
		res = exp.E3PolicyTiers(h)
	}
	peer := res.Share[rib.ClassPrivate] + res.Share[rib.ClassPublic] + res.Share[rib.ClassRouteServer]
	b.ReportMetric(peer*100, "%peer-traffic")
}

func BenchmarkE4DetourVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := mustHarness(b, benchConfig(true))
		b.StartTimer()
		res := exp.E4DetourVolume(h, 20*time.Minute)
		b.ReportMetric(res.Median*100, "%detoured-median")
		b.StopTimer()
		h.Close()
		b.StartTimer()
	}
}

func BenchmarkE5DetourDurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := mustHarness(b, benchConfig(true))
		b.StartTimer()
		res := exp.E5DetourDurations(h, 20*time.Minute)
		b.ReportMetric(float64(res.Episodes), "episodes")
		b.StopTimer()
		h.Close()
		b.StartTimer()
	}
}

func BenchmarkE6OverloadAvoidance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		hb := mustHarness(b, benchConfig(false))
		he := mustHarness(b, benchConfig(true))
		b.StartTimer()
		base := exp.RunAvoidanceArm(hb, 15*time.Minute)
		withEF := exp.RunAvoidanceArm(he, 15*time.Minute)
		b.ReportMetric(base.DroppedFrac*100, "%dropped-bgp")
		b.ReportMetric(withEF.DroppedFrac*100, "%dropped-ef")
		b.StopTimer()
		hb.Close()
		he.Close()
		b.StartTimer()
	}
}

func BenchmarkE7DetourLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := mustHarness(b, benchConfig(true))
		b.StartTimer()
		res := exp.E7DetourLatency(h, 15*time.Minute)
		b.ReportMetric(res.P50, "ms-p50-delta")
		b.StopTimer()
		h.Close()
		b.StartTimer()
	}
}

func BenchmarkE8AltPathGaps(b *testing.B) {
	h := mustHarness(b, benchConfig(false))
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		res, err := exp.E8AltPathGaps(h, 4)
		if err != nil {
			b.Fatal(err)
		}
		frac = res.FracGainAtLeast[20]
	}
	b.ReportMetric(frac*100, "%alt>=20ms-faster")
}

func BenchmarkE9FlashReaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := benchConfig(true)
		cfg.Synth.PNIHeadroomMin = 1.2
		cfg.Synth.PNIHeadroomMax = 1.5
		cfg.Start = time.Date(2017, 3, 1, 12, 0, 0, 0, time.UTC)
		sc, err := netsim.Synthesize(cfg.Synth)
		if err != nil {
			b.Fatal(err)
		}
		var flashAS uint32
		var best float64
		for as, info := range sc.ASes {
			if info.Class == rib.ClassPrivate && info.Weight > best {
				best, flashAS = info.Weight, as
			}
		}
		flashStart := cfg.Start.Add(5 * time.Minute)
		cfg.Demand.Flash = []netsim.FlashEvent{{
			AS: flashAS, Start: flashStart, Duration: 30 * time.Minute, Multiplier: 3,
		}}
		h := mustHarness(b, cfg)
		b.StartTimer()
		res := exp.E9FlashReaction(h, flashStart, 20*time.Minute)
		if res.OverloadAppeared && res.Reaction > 0 {
			b.ReportMetric(res.Reaction.Seconds(), "s-reaction")
		}
		b.StopTimer()
		h.Close()
		b.StartTimer()
	}
}

func BenchmarkE10Ablations(b *testing.B) {
	variants := exp.DefaultAblationVariants()
	for i := 0; i < b.N; i++ {
		for _, v := range variants[:2] { // thresholds 0.90 and 0.95
			row, err := exp.RunAblation(benchConfig(true), v, 8*time.Minute)
			if err != nil {
				b.Fatal(err)
			}
			if v.Name == "threshold=0.95 (paper)" {
				b.ReportMetric(row.DetourFrac*100, "%detoured@0.95")
			}
		}
	}
}

// BenchmarkFleet4PoPs measures the across-PoPs aggregate: four sites,
// each under its own controller, stepped through 10 virtual minutes.
func BenchmarkFleet4PoPs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fleet, err := exp.NewFleet(context.Background(), exp.FleetConfig{
			Base: benchConfig(true),
			PoPs: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := fleet.Run(10 * time.Minute)
		b.ReportMetric(float64(res.PoPsWithDetours), "pops-detouring")
		b.StopTimer()
		fleet.Close()
		b.StartTimer()
	}
}

// BenchmarkHarnessTick measures the cost of one dataplane+controller
// step at the benchmark scale.
func BenchmarkHarnessTick(b *testing.B) {
	h := mustHarness(b, benchConfig(true))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Step()
	}
}

// BenchmarkHarnessConverge measures full PoP bring-up: scenario
// synthesis, all BGP sessions establishing, full route exchange, and
// controller readiness.
func BenchmarkHarnessConverge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness(b, benchConfig(true))
		b.StopTimer()
		h.Close()
		b.StartTimer()
	}
}
